// Package analysis provides the program analyses that the LLVA
// representation is designed to make easy (paper, Sections 3.1 and 5.1):
// the explicit CFG yields dominator trees, dominance frontiers and loop
// nests directly; the SSA form yields sparse def-use information; and the
// type information supports alias analysis and call-graph construction
// that are "impractical for machine code".
package analysis

import (
	"llva/internal/core"
)

// CFG caches the control-flow graph of one function: block indices,
// successor and predecessor lists.
type CFG struct {
	F      *core.Function
	Blocks []*core.BasicBlock
	Index  map[*core.BasicBlock]int
	Succs  [][]int
	Preds  [][]int
	// Reachable[i] reports whether block i is reachable from entry.
	Reachable []bool
}

// NewCFG builds the CFG of f.
func NewCFG(f *core.Function) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:         f,
		Blocks:    f.Blocks,
		Index:     make(map[*core.BasicBlock]int, n),
		Succs:     make([][]int, n),
		Preds:     make([][]int, n),
		Reachable: make([]bool, n),
	}
	for i, bb := range f.Blocks {
		c.Index[bb] = i
	}
	for i, bb := range f.Blocks {
		for _, s := range bb.Successors() {
			si := c.Index[s]
			c.Succs[i] = append(c.Succs[i], si)
			c.Preds[si] = append(c.Preds[si], i)
		}
	}
	// DFS reachability from entry.
	var stack []int
	if n > 0 {
		stack = append(stack, 0)
		c.Reachable[0] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.Succs[b] {
			if !c.Reachable[s] {
				c.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	return c
}

// PostOrder returns the blocks of the CFG in post-order (reachable blocks
// only).
func (c *CFG) PostOrder() []int {
	seen := make([]bool, len(c.Blocks))
	var order []int
	var visit func(int)
	visit = func(b int) {
		seen[b] = true
		for _, s := range c.Succs[b] {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	if len(c.Blocks) > 0 {
		visit(0)
	}
	return order
}

// DomTree is the dominator tree of a function, built with the
// Cooper-Harvey-Kennedy iterative algorithm.
type DomTree struct {
	CFG *CFG
	// IDom[i] is the immediate dominator block index of block i
	// (IDom[0] == 0; unreachable blocks have IDom -1).
	IDom []int
	// Children[i] lists the blocks immediately dominated by i.
	Children [][]int
	// pre/post numbering for O(1) dominance queries
	pre, post []int
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *core.Function) *DomTree {
	return NewDomTreeCFG(NewCFG(f))
}

// NewDomTreeCFG computes the dominator tree over an existing CFG.
func NewDomTreeCFG(c *CFG) *DomTree {
	n := len(c.Blocks)
	dt := &DomTree{CFG: c, IDom: make([]int, n)}
	for i := range dt.IDom {
		dt.IDom[i] = -1
	}
	if n == 0 {
		return dt
	}

	post := c.PostOrder()
	// rpoNum[b] = position of b in reverse post-order
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range post {
		rpoNum[b] = len(post) - 1 - i
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = dt.IDom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = dt.IDom[b]
			}
		}
		return a
	}

	dt.IDom[0] = 0
	changed := true
	for changed {
		changed = false
		// reverse post-order, skipping entry
		for i := len(post) - 2; i >= 0; i-- {
			b := post[i]
			newIdom := -1
			for _, p := range c.Preds[b] {
				if !c.Reachable[p] || dt.IDom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && dt.IDom[b] != newIdom {
				dt.IDom[b] = newIdom
				changed = true
			}
		}
	}

	dt.Children = make([][]int, n)
	for b := 1; b < n; b++ {
		if dt.IDom[b] >= 0 {
			dt.Children[dt.IDom[b]] = append(dt.Children[dt.IDom[b]], b)
		}
	}

	// pre/post numbering for dominance queries
	dt.pre = make([]int, n)
	dt.post = make([]int, n)
	clock := 0
	var dfs func(int)
	dfs = func(b int) {
		clock++
		dt.pre[b] = clock
		for _, ch := range dt.Children[b] {
			dfs(ch)
		}
		clock++
		dt.post[b] = clock
	}
	dfs(0)
	return dt
}

// Dominates reports whether block a dominates block b (by index).
func (dt *DomTree) Dominates(a, b int) bool {
	if dt.IDom[b] == -1 && b != 0 {
		return true // unreachable blocks are vacuously dominated
	}
	return dt.pre[a] <= dt.pre[b] && dt.post[b] <= dt.post[a]
}

// DominatesBlock is Dominates on *BasicBlock values.
func (dt *DomTree) DominatesBlock(a, b *core.BasicBlock) bool {
	return dt.Dominates(dt.CFG.Index[a], dt.CFG.Index[b])
}

// Frontiers computes the dominance frontier of every block (Cytron et
// al.), the key structure for SSA phi placement.
func (dt *DomTree) Frontiers() [][]int {
	c := dt.CFG
	n := len(c.Blocks)
	df := make([][]int, n)
	inDF := make([]map[int]bool, n)
	for i := range inDF {
		inDF[i] = make(map[int]bool)
	}
	for b := 0; b < n; b++ {
		if !c.Reachable[b] || len(c.Preds[b]) < 2 {
			continue
		}
		for _, p := range c.Preds[b] {
			if !c.Reachable[p] {
				continue
			}
			runner := p
			for runner != dt.IDom[b] {
				if !inDF[runner][b] {
					inDF[runner][b] = true
					df[runner] = append(df[runner], b)
				}
				next := dt.IDom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}
