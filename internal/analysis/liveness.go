package analysis

import "llva/internal/core"

// Liveness computes per-block live-in/live-out sets over SSA values
// (instructions and arguments). The register allocators consume it.
type Liveness struct {
	CFG *CFG
	// LiveIn[b] / LiveOut[b] are the values live at block entry/exit.
	LiveIn, LiveOut []map[core.Value]bool
}

// trackable reports whether v occupies a virtual register.
func trackable(v core.Value) bool {
	switch v.(type) {
	case *core.Instruction, *core.Argument:
		return true
	}
	return false
}

// NewLiveness runs the classic backward dataflow over the CFG. Phi
// semantics: a phi's operands are live out of the corresponding
// predecessor, not live into the phi's block.
func NewLiveness(c *CFG) *Liveness {
	n := len(c.Blocks)
	lv := &Liveness{CFG: c, LiveIn: make([]map[core.Value]bool, n), LiveOut: make([]map[core.Value]bool, n)}
	for i := range lv.LiveIn {
		lv.LiveIn[i] = make(map[core.Value]bool)
		lv.LiveOut[i] = make(map[core.Value]bool)
	}

	// use[b]: values used in b before any (re)definition in b.
	// def[b]: values defined in b.
	use := make([]map[core.Value]bool, n)
	def := make([]map[core.Value]bool, n)
	// phiUses[p][v]: v used by a phi along edge from predecessor p.
	phiUses := make([]map[core.Value]bool, n)
	for i := range use {
		use[i] = make(map[core.Value]bool)
		def[i] = make(map[core.Value]bool)
		phiUses[i] = make(map[core.Value]bool)
	}

	for bi, bb := range c.Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpPhi {
				def[bi][in] = true
				for i, v := range in.Operands() {
					if trackable(v) {
						pi := c.Index[in.Block(i)]
						phiUses[pi][v] = true
					}
				}
				continue
			}
			for _, v := range in.Operands() {
				if trackable(v) && !def[bi][v] {
					use[bi][v] = true
				}
			}
			if in.HasResult() {
				def[bi][in] = true
			}
		}
	}

	changed := true
	for changed {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			if !c.Reachable[bi] {
				continue
			}
			out := lv.LiveOut[bi]
			for _, s := range c.Succs[bi] {
				for v := range lv.LiveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			// Values used by phis in successors along this edge are live
			// out of this block.
			for v := range phiUses[bi] {
				if !out[v] {
					out[v] = true
					changed = true
				}
			}
			in := lv.LiveIn[bi]
			for v := range use[bi] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[bi][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return lv
}
