package analysis

import "llva/internal/core"

// AliasResult is the outcome of an alias query.
type AliasResult int

const (
	// MayAlias means the two pointers may refer to overlapping memory.
	MayAlias AliasResult = iota
	// NoAlias means they provably never overlap.
	NoAlias
	// MustAlias means they provably refer to the same address.
	MustAlias
)

// baseObject walks a pointer value to its base allocation site, looking
// through getelementptr (and recording whether any GEP was crossed).
func baseObject(v core.Value) (core.Value, bool) {
	gep := false
	for {
		in, ok := v.(*core.Instruction)
		if !ok {
			return v, gep
		}
		if in.Op() != core.OpGetElementPtr {
			return v, gep
		}
		gep = true
		v = in.Operand(0)
	}
}

// isIdentified reports whether v is a distinct allocation site: an
// alloca, a global variable, or a null constant.
func isIdentified(v core.Value) bool {
	switch x := v.(type) {
	case *core.GlobalVariable:
		return true
	case *core.Instruction:
		return x.Op() == core.OpAlloca
	case *core.Constant:
		return x.CK == core.ConstNull
	}
	return false
}

// Alias performs a simple but sound base-object alias analysis, the style
// of disambiguation the typed LLVA representation supports directly
// (paper, Section 3.3: type, control-flow and SSA information enable
// sophisticated alias analysis in the translator).
func Alias(a, b core.Value) AliasResult {
	if a == b {
		return MustAlias
	}
	ba, gepA := baseObject(a)
	bb, gepB := baseObject(b)

	if ba == bb {
		// Same base: compare GEP index paths when both are constant.
		ia, aok := a.(*core.Instruction)
		ib, bok := b.(*core.Instruction)
		if aok && bok && ia.Op() == core.OpGetElementPtr && ib.Op() == core.OpGetElementPtr &&
			ia.Operand(0) == ib.Operand(0) {
			return aliasGEPs(ia, ib)
		}
		return MayAlias
	}

	// Distinct identified objects never alias.
	if isIdentified(ba) && isIdentified(bb) {
		return NoAlias
	}
	// A non-escaping alloca's address is invisible outside the function:
	// it cannot alias any pointer derived from a different base.
	if isNonEscapingAlloca(ba) || isNonEscapingAlloca(bb) {
		return NoAlias
	}
	_ = gepA
	_ = gepB
	return MayAlias
}

func isNonEscapingAlloca(v core.Value) bool {
	in, ok := v.(*core.Instruction)
	return ok && in.Op() == core.OpAlloca && !Escapes(in)
}

// aliasGEPs compares two GEPs off the same pointer operand.
func aliasGEPs(a, b *core.Instruction) AliasResult {
	na, nb := a.NumOperands(), b.NumOperands()
	n := na
	if nb < n {
		n = nb
	}
	allEqual := true
	for i := 1; i < n; i++ {
		ca, aok := a.Operand(i).(*core.Constant)
		cb, bok := b.Operand(i).(*core.Constant)
		if !aok || !bok {
			// A dynamic index: can't compare further.
			return MayAlias
		}
		if ca.Int64() != cb.Int64() {
			// First differing constant index: paths diverge into disjoint
			// subobjects.
			if i == n-1 && na == nb {
				return NoAlias
			}
			return NoAlias
		}
	}
	if na != nb {
		// One path is a prefix of the other: enclosing object overlaps
		// its member.
		return MayAlias
	}
	if allEqual {
		return MustAlias
	}
	return MayAlias
}

// Base returns the base allocation site of a pointer (walking GEPs) and
// whether that base is an identified local object (an alloca).
func Base(v core.Value) (core.Value, bool) {
	b, _ := baseObject(v)
	in, ok := b.(*core.Instruction)
	return b, ok && in.Op() == core.OpAlloca
}

// Escapes reports whether the address produced by an alloca (or global)
// may escape the current function's direct loads/stores: it is passed to
// a call, stored somewhere, cast, or returned. Non-escaping allocas can
// be promoted or have their loads/stores freely reordered.
func Escapes(v core.Value) bool {
	var visit func(core.Value) bool
	seen := make(map[core.Value]bool)
	visit = func(p core.Value) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		var uses []core.Use
		switch x := p.(type) {
		case *core.Instruction:
			uses = x.Uses()
		case *core.GlobalVariable:
			uses = x.Uses()
		default:
			return true
		}
		for _, u := range uses {
			in := u.User
			switch in.Op() {
			case core.OpLoad:
				// reading through the pointer is fine
			case core.OpStore:
				if u.Index == 0 {
					return true // the pointer itself is stored
				}
			case core.OpGetElementPtr:
				if visit(in) {
					return true
				}
			case core.OpSetEQ, core.OpSetNE, core.OpSetLT, core.OpSetGT,
				core.OpSetLE, core.OpSetGE:
				// comparisons don't leak the pointee
			default:
				return true // call, cast, ret, phi, ... conservatively escapes
			}
		}
		return false
	}
	return visit(v)
}
