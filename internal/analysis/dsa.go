package analysis

import (
	"sort"

	"llva/internal/core"
)

// Data Structure Analysis (DSA-lite). The paper (Section 5.1) highlights
// Data Structure Analysis — a pointer analysis that "is able to identify
// information about logical data structures (e.g., an entire list,
// hashtable, or graph), including disjoint instances of such structures"
// — as the kind of interprocedural technique the LLVA representation
// makes possible. This implementation is a unification-based
// (Steensgaard-style), field-insensitive, context-insensitive variant:
// every memory object (alloca, global, heap allocation site) becomes a
// node; pointer flow unifies nodes; the surviving equivalence classes are
// the disjoint data structure instances. Automatic Pool Allocation
// (passes.PoolAllocate) consumes the heap nodes.

// DSNode is one memory-object equivalence class.
type DSNode struct {
	id int

	// Allocation sites merged into this node.
	Allocas   []*core.Instruction    // stack objects
	Globals   []*core.GlobalVariable // global objects
	HeapSites []*core.Instruction    // malloc/calloc call sites

	// StoredTypes collects the pointee types observed flowing into the
	// node (the "internal static structure" of the instance).
	StoredTypes map[*core.Type]bool

	// Escapes marks nodes reachable from globals, call arguments to
	// externals, or return values that leave the module.
	GlobalEscape bool

	pointee *cell // the single outgoing points-to edge (unification)
}

// ID returns a stable identifier for the node.
func (n *DSNode) ID() int { return n.id }

// HasHeap reports whether the node includes heap allocation sites.
func (n *DSNode) HasHeap() bool { return len(n.HeapSites) > 0 }

// cell is a union-find cell that may point to a DSNode.
type cell struct {
	parent *cell
	node   *DSNode
}

func (c *cell) find() *cell {
	for c.parent != nil {
		if c.parent.parent != nil {
			c.parent = c.parent.parent // path halving
		}
		c = c.parent
	}
	return c
}

// DSA is the analysis result.
type DSA struct {
	M     *core.Module
	cells map[core.Value]*cell
	nodes []*DSNode
	next  int
	dirty bool
}

// NewDSA runs the analysis over the module.
func NewDSA(m *core.Module) *DSA {
	d := &DSA{M: m, cells: make(map[core.Value]*cell)}
	d.run()
	return d
}

func (d *DSA) newNode() *DSNode {
	n := &DSNode{id: d.next, StoredTypes: make(map[*core.Type]bool)}
	d.next++
	d.nodes = append(d.nodes, n)
	return n
}

// cellOf returns the union-find cell of a pointer-typed value.
func (d *DSA) cellOf(v core.Value) *cell {
	if c, ok := d.cells[v]; ok {
		return c.find()
	}
	c := &cell{}
	d.cells[v] = c
	return c
}

// unify merges two cells (and, recursively, the nodes they denote).
func (d *DSA) unify(a, b *cell) *cell {
	a, b = a.find(), b.find()
	if a == b {
		return a
	}
	d.dirty = true
	b.parent = a
	if b.node != nil {
		if a.node == nil {
			a.node = b.node
		} else {
			d.mergeNodes(a.node, b.node)
		}
	}
	return a
}

func (d *DSA) mergeNodes(into, from *DSNode) {
	if into == from {
		return
	}
	into.Allocas = append(into.Allocas, from.Allocas...)
	into.Globals = append(into.Globals, from.Globals...)
	into.HeapSites = append(into.HeapSites, from.HeapSites...)
	for t := range from.StoredTypes {
		into.StoredTypes[t] = true
	}
	into.GlobalEscape = into.GlobalEscape || from.GlobalEscape
	from.id = -1 // dead
	if from.pointee != nil {
		if into.pointee == nil {
			into.pointee = from.pointee
		} else {
			d.unify(into.pointee, from.pointee)
		}
	}
}

// nodeFor materializes (or retrieves) the object node a cell points to.
func (d *DSA) nodeFor(c *cell) *DSNode {
	c = c.find()
	if c.node == nil {
		c.node = d.newNode()
	}
	return c.node
}

// pointeeCell returns the cell reached by dereferencing c's node.
func (d *DSA) pointeeCell(c *cell) *cell {
	n := d.nodeFor(c)
	if n.pointee == nil {
		n.pointee = &cell{}
	}
	return n.pointee.find()
}

func isPtr(v core.Value) bool { return v.Type().Kind() == core.PointerKind }

// heapFn reports whether f is a heap allocator in the runtime library.
func heapFn(f *core.Function) bool {
	return f != nil && f.IsDeclaration() &&
		(f.Name() == "malloc" || f.Name() == "calloc")
}

func (d *DSA) run() {
	m := d.M

	// Globals are object nodes, pre-marked escaping (visible module-wide).
	for _, g := range m.Globals {
		n := d.nodeFor(d.cellOf(g))
		n.Globals = append(n.Globals, g)
		n.GlobalEscape = true
	}

	// Iterate the constraint generation to a fixpoint: unification of
	// call targets can reveal new flows.
	for {
		d.dirty = false
		before := len(d.cells)
		for _, f := range m.Functions {
			for _, bb := range f.Blocks {
				for _, in := range bb.Instructions() {
					d.constraints(f, in)
				}
			}
		}
		if !d.dirty && len(d.cells) == before {
			return
		}
	}
}

func (d *DSA) constraints(f *core.Function, in *core.Instruction) {
	switch in.Op() {
	case core.OpAlloca:
		n := d.nodeFor(d.cellOf(in))
		if len(n.Allocas) == 0 || n.Allocas[len(n.Allocas)-1] != in {
			if !containsInstr(n.Allocas, in) {
				n.Allocas = append(n.Allocas, in)
				n.StoredTypes[in.Allocated] = true
			}
		}
	case core.OpGetElementPtr:
		// Field-insensitive: the derived pointer shares the base's cell.
		d.unify(d.cellOf(in), d.cellOf(in.Operand(0)))
	case core.OpCast:
		if isPtr(in) && isPtr(in.Operand(0)) {
			d.unify(d.cellOf(in), d.cellOf(in.Operand(0)))
		}
	case core.OpPhi:
		if isPtr(in) {
			for _, op := range in.Operands() {
				d.unify(d.cellOf(in), d.cellOf(op))
			}
		}
	case core.OpLoad:
		if isPtr(in) {
			d.unify(d.cellOf(in), d.pointeeCell(d.cellOf(in.Operand(0))))
		}
	case core.OpStore:
		if isPtr(in.Operand(0)) {
			d.unify(d.cellOf(in.Operand(0)),
				d.pointeeCell(d.cellOf(in.Operand(1))))
		}
	case core.OpCall, core.OpInvoke:
		callee := in.CalledFunction()
		if heapFn(callee) {
			n := d.nodeFor(d.cellOf(in))
			if !containsInstr(n.HeapSites, in) {
				n.HeapSites = append(n.HeapSites, in)
			}
			return
		}
		if callee != nil && !callee.IsDeclaration() {
			// Direct call: unify pointer arguments with parameters and
			// the result with the callee's returned pointers.
			for i, a := range in.CallArgs() {
				if i < len(callee.Params) && isPtr(a) {
					d.unify(d.cellOf(a), d.cellOf(callee.Params[i]))
				}
			}
			if isPtr(in) {
				for _, bb := range callee.Blocks {
					t := bb.Terminator()
					if t != nil && t.Op() == core.OpRet && t.NumOperands() == 1 && isPtr(t.Operand(0)) {
						d.unify(d.cellOf(in), d.cellOf(t.Operand(0)))
					}
				}
			}
			return
		}
		// External or indirect call: pointer arguments escape.
		for _, a := range in.CallArgs() {
			if isPtr(a) {
				d.nodeFor(d.cellOf(a)).GlobalEscape = true
			}
		}
		if isPtr(in) {
			d.nodeFor(d.cellOf(in)).GlobalEscape = true
		}
	}
}

func containsInstr(xs []*core.Instruction, in *core.Instruction) bool {
	for _, x := range xs {
		if x == in {
			return true
		}
	}
	return false
}

// NodeOf returns the data-structure node a pointer value refers to, or
// nil if the value never acquired one.
func (d *DSA) NodeOf(v core.Value) *DSNode {
	c, ok := d.cells[v]
	if !ok {
		return nil
	}
	return c.find().node
}

// Structures returns the live nodes — the disjoint data structure
// instances — ordered by id.
func (d *DSA) Structures() []*DSNode {
	var out []*DSNode
	for _, n := range d.nodes {
		if n.id >= 0 && (len(n.Allocas)+len(n.Globals)+len(n.HeapSites) > 0) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// HeapStructures returns the disjoint heap-allocated structure instances
// (the pool-allocation candidates).
func (d *DSA) HeapStructures() []*DSNode {
	var out []*DSNode
	for _, n := range d.Structures() {
		if n.HasHeap() {
			out = append(out, n)
		}
	}
	return out
}

// SameStructure reports whether two pointers provably refer to the same
// data structure instance.
func (d *DSA) SameStructure(a, b core.Value) bool {
	na, nb := d.NodeOf(a), d.NodeOf(b)
	return na != nil && na == nb
}
