package obj

import (
	"strconv"
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/minic"
)

const quadtree = `
target endian = little
target pointersize = 64

%struct.QuadTree = type { double, [4 x %struct.QuadTree*] }
%table = global [2 x int (int)*] [ int (int)* %idf, int (int)* %idf ]

declare void %print_int(long %v)

int %idf(int %x) {
entry:
    ret int %x
}

void %Sum3rdChildren(%struct.QuadTree* %T, double* %Result) {
entry:
    %V = alloca double
    %tmp.0 = seteq %struct.QuadTree* %T, null
    br bool %tmp.0, label %endif, label %else
else:
    %tmp.1 = getelementptr %struct.QuadTree* %T, long 0, ubyte 1, long 3
    %Child3 = load %struct.QuadTree** %tmp.1
    call void %Sum3rdChildren(%struct.QuadTree* %Child3, double* %V)
    %tmp.2 = load double* %V
    %tmp.3 = getelementptr %struct.QuadTree* %T, long 0, ubyte 0
    %tmp.4 = load double* %tmp.3
    %Ret.0 = add double %tmp.2, %tmp.4 !exc
    br label %endif
endif:
    %Ret.1 = phi double [ %Ret.0, %else ], [ 0.0, %entry ]
    store double %Ret.1, double* %Result
    ret void
}
`

// roundTrip encodes and decodes m, comparing semantic structure via the
// printed assembly (names are not preserved by design, so both sides are
// canonicalized by reparsing the original through a name-stripped clone).
func roundTrip(t *testing.T, m *core.Module) *core.Module {
	t.Helper()
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	m2, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := core.Verify(m2); err != nil {
		t.Fatalf("decoded module fails verification: %v", err)
	}
	return m2
}

func TestRoundTripQuadtree(t *testing.T) {
	m, err := asm.Parse("qt", quadtree)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	m2 := roundTrip(t, m)

	f := m2.Function("Sum3rdChildren")
	if f == nil || f.NumInstructions() != m.Function("Sum3rdChildren").NumInstructions() {
		t.Fatal("instruction count not preserved")
	}
	// ExceptionsEnabled attribute must survive (the add has !exc).
	var found bool
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpAdd {
				found = true
				if !in.ExceptionsEnabled {
					t.Error("ExceptionsEnabled attribute lost in round trip")
				}
			}
		}
	}
	if !found {
		t.Error("add instruction lost")
	}
	if m2.PointerSize != 8 || !m2.LittleEndian {
		t.Error("configuration flags lost")
	}
	// Function-pointer table initializer must survive.
	g := m2.Global("table")
	if g == nil || g.Init == nil || g.Init.CK != core.ConstArray {
		t.Fatal("global fn-pointer table lost")
	}
	if g.Init.Elems[0].CK != core.ConstGlobal || g.Init.Elems[0].Ref.Name() != "idf" {
		t.Error("fn-pointer table entries lost")
	}
}

func TestRoundTripSemanticEquality(t *testing.T) {
	m, err := asm.Parse("qt", quadtree)
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, m)
	// Encoding is name-stripping; compare structure counts and re-encode:
	// a second encode must be byte-identical (fixpoint).
	d1, err := Encode(m2)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Decode(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Encode(m3)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("encode/decode is not a fixpoint")
	}
}

func TestCompiledProgramRoundTrip(t *testing.T) {
	src := `
struct Node { int val; struct Node *next; };
int sum_list(struct Node *head) {
	int s = 0;
	while (head != 0) { s += head->val; head = head->next; }
	return s;
}
int main() {
	struct Node a, b;
	a.val = 1; a.next = &b;
	b.val = 2; b.next = 0;
	return sum_list(&a);
}`
	m, err := minic.Compile("rt.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, m)
	if m2.Function("main") == nil || m2.Function("sum_list") == nil {
		t.Fatal("functions lost")
	}
	if got, want := m2.Function("sum_list").NumInstructions(),
		m.Function("sum_list").NumInstructions(); got != want {
		t.Errorf("sum_list has %d instructions after round trip, want %d", got, want)
	}
}

func TestCompactFormDominates(t *testing.T) {
	// Paper Section 3.1: most instructions fit in a single 32-bit word.
	// Check that for straight-line arithmetic code, bytes-per-instruction
	// stays close to 4.
	var b strings.Builder
	b.WriteString("long %f(long %a, long %b) {\nentry:\n")
	b.WriteString("    %v0 = add long %a, %b\n")
	for i := 1; i < 100; i++ {
		b.WriteString("    %v")
		b.WriteString(strings.Repeat("", 0))
		b.WriteString(itoa(i))
		b.WriteString(" = add long %v")
		b.WriteString(itoa(i - 1))
		b.WriteString(", %b\n")
	}
	b.WriteString("    ret long %v99\n}\n")
	m, err := asm.Parse("arith", b.String())
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	perInstr := float64(len(data)) / 101.0
	if perInstr > 6.0 {
		t.Errorf("bytes per instruction = %.2f, want near 4 (compact form)", perInstr)
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
