package obj

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"llva/internal/core"
)

type reader struct {
	r   *bytes.Reader
	m   *core.Module
	ctx *core.TypeContext

	typeLst []*core.Type
	values  []core.Value // module-level: globals then functions
	bodies  []*core.Function
}

// Decode deserializes virtual object code into a module. Malformed or
// corrupted input yields an error, never a panic: the decoder validates
// structurally and converts any residual constructor panic (reachable
// only through adversarial bit patterns) into an error.
func Decode(data []byte) (m *core.Module, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m, err = nil, fmt.Errorf("obj: malformed object: %v", rec)
		}
	}()
	r := &reader{r: bytes.NewReader(data)}
	m, err = r.run()
	if err != nil {
		return nil, fmt.Errorf("obj: %w", err)
	}
	return m, nil
}

func (r *reader) run() (*core.Module, error) {
	var magic [4]byte
	if _, err := r.r.Read(magic[:]); err != nil || magic != Magic {
		return nil, fmt.Errorf("bad magic")
	}
	ver, err := r.byte()
	if err != nil || ver != Version {
		return nil, fmt.Errorf("unsupported version %d", ver)
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	r.m = core.NewModule(name)
	r.ctx = r.m.Types()
	r.m.LittleEndian = flags&1 != 0
	if flags&2 != 0 {
		r.m.PointerSize = 8
	} else {
		r.m.PointerSize = 4
	}

	if err := r.readTypes(); err != nil {
		return nil, err
	}
	if err := r.readGlobals(); err != nil {
		return nil, err
	}
	if err := r.readFunctions(); err != nil {
		return nil, err
	}
	return r.m, nil
}

func (r *reader) byte() (byte, error) { return r.r.ReadByte() }

func (r *reader) uvarint() (uint64, error) { return binary.ReadUvarint(r.r) }

func (r *reader) svarint() (int64, error) { return binary.ReadVarint(r.r) }

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("string too long")
	}
	b := make([]byte, n)
	if _, err := r.r.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) u64() (uint64, error) {
	var b [8]byte
	if _, err := r.r.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (r *reader) typeByID(id uint64) (*core.Type, error) {
	if id >= uint64(len(r.typeLst)) || r.typeLst[id] == nil {
		return nil, fmt.Errorf("bad type id %d", id)
	}
	return r.typeLst[id], nil
}

func (r *reader) readTypeID() (*core.Type, error) {
	id, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	return r.typeByID(id)
}

// readTypes reconstructs the type table. Named structs may reference
// themselves; they are created first (opaque) and given bodies after all
// types are read, so field IDs may be forward references.
func (r *reader) readTypes() error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > 1<<20 {
		return fmt.Errorf("too many types")
	}
	r.typeLst = make([]*core.Type, n)
	type pendingStruct struct {
		t      *core.Type
		fields []uint64
	}
	type pendingOther struct {
		idx     int
		kind    core.Kind
		n       uint64
		elem    uint64
		fields  []uint64
		ret     uint64
		params  []uint64
		vararg  bool
		sname   string
		hasBody bool
	}
	var namedPending []pendingStruct
	var others []pendingOther

	for i := 0; i < int(n); i++ {
		kb, err := r.byte()
		if err != nil {
			return err
		}
		k := core.Kind(kb)
		switch k {
		case core.PointerKind:
			id, err := r.uvarint()
			if err != nil {
				return err
			}
			others = append(others, pendingOther{idx: i, kind: k, elem: id})
		case core.ArrayKind:
			ln, err := r.uvarint()
			if err != nil {
				return err
			}
			id, err := r.uvarint()
			if err != nil {
				return err
			}
			others = append(others, pendingOther{idx: i, kind: k, n: ln, elem: id})
		case core.StructKind:
			sname, err := r.str()
			if err != nil {
				return err
			}
			nf, err := r.uvarint()
			if err != nil {
				return err
			}
			hasBody, err := r.byte()
			if err != nil {
				return err
			}
			fields := make([]uint64, nf)
			if hasBody == 1 {
				for j := range fields {
					if fields[j], err = r.uvarint(); err != nil {
						return err
					}
				}
			}
			if sname != "" {
				t := r.ctx.NamedStruct(sname)
				r.typeLst[i] = t
				if hasBody == 1 {
					namedPending = append(namedPending, pendingStruct{t: t, fields: fields})
				}
			} else {
				others = append(others, pendingOther{idx: i, kind: k, fields: fields, hasBody: hasBody == 1})
			}
		case core.FunctionKind:
			ret, err := r.uvarint()
			if err != nil {
				return err
			}
			np, err := r.uvarint()
			if err != nil {
				return err
			}
			params := make([]uint64, np)
			for j := range params {
				if params[j], err = r.uvarint(); err != nil {
					return err
				}
			}
			va, err := r.byte()
			if err != nil {
				return err
			}
			others = append(others, pendingOther{idx: i, kind: k, ret: ret, params: params, vararg: va == 1})
		default:
			if k > core.LabelKind {
				return fmt.Errorf("bad type kind %d", k)
			}
			r.typeLst[i] = r.ctx.Primitive(k)
		}
	}

	// Resolve non-named derived types. Because the writer emits components
	// before composites (except named structs), a single ordered pass
	// suffices, retrying until fixpoint for safety.
	remaining := others
	for len(remaining) > 0 {
		var next []pendingOther
		progress := false
		for _, p := range remaining {
			ok := true
			get := func(id uint64) *core.Type {
				if id >= uint64(len(r.typeLst)) || r.typeLst[id] == nil {
					ok = false
					return nil
				}
				return r.typeLst[id]
			}
			switch p.kind {
			case core.PointerKind:
				e := get(p.elem)
				if ok {
					r.typeLst[p.idx] = r.ctx.Pointer(e)
				}
			case core.ArrayKind:
				e := get(p.elem)
				if ok {
					r.typeLst[p.idx] = r.ctx.Array(int(p.n), e)
				}
			case core.StructKind:
				fields := make([]*core.Type, len(p.fields))
				for j, id := range p.fields {
					fields[j] = get(id)
				}
				if ok {
					r.typeLst[p.idx] = r.ctx.Struct(fields...)
				}
			case core.FunctionKind:
				ret := get(p.ret)
				params := make([]*core.Type, len(p.params))
				for j, id := range p.params {
					params[j] = get(id)
				}
				if ok {
					r.typeLst[p.idx] = r.ctx.Function(ret, params, p.vararg)
				}
			}
			if ok {
				progress = true
			} else {
				next = append(next, p)
			}
		}
		if !progress {
			return fmt.Errorf("unresolvable type table")
		}
		remaining = next
	}

	// Named struct bodies last (fields may be any type).
	for _, p := range namedPending {
		fields := make([]*core.Type, len(p.fields))
		for j, id := range p.fields {
			t, err := r.typeByID(id)
			if err != nil {
				return err
			}
			fields[j] = t
		}
		r.ctx.SetBody(p.t, fields...)
	}
	return nil
}

func (r *reader) readConst() (*core.Constant, error) {
	kb, err := r.byte()
	if err != nil {
		return nil, err
	}
	ck := core.ConstKind(kb)
	t, err := r.readTypeID()
	if err != nil {
		return nil, err
	}
	switch ck {
	case core.ConstInt:
		v, err := r.svarint()
		if err != nil {
			return nil, err
		}
		if !t.IsInteger() {
			return nil, fmt.Errorf("integer constant with non-integer type %s", t)
		}
		return core.NewInt(t, v), nil
	case core.ConstBool:
		b, err := r.byte()
		if err != nil {
			return nil, err
		}
		if t.Kind() != core.BoolKind {
			return nil, fmt.Errorf("bool constant with type %s", t)
		}
		return core.NewBool(t, b != 0), nil
	case core.ConstFloat:
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		if !t.IsFloat() {
			return nil, fmt.Errorf("float constant with type %s", t)
		}
		return core.NewFloat(t, math.Float64frombits(bits)), nil
	case core.ConstNull:
		if t.Kind() != core.PointerKind {
			return nil, fmt.Errorf("null constant with type %s", t)
		}
		return core.NewNull(t), nil
	case core.ConstUndef:
		return core.NewUndef(t), nil
	case core.ConstZero:
		return core.NewZero(t), nil
	case core.ConstArray, core.ConstStruct:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("aggregate constant too large")
		}
		if ck == core.ConstArray && (t.Kind() != core.ArrayKind || int(n) != t.Len()) {
			return nil, fmt.Errorf("array constant shape mismatch for %s", t)
		}
		if ck == core.ConstStruct && (t.Kind() != core.StructKind || int(n) != len(t.Fields())) {
			return nil, fmt.Errorf("struct constant shape mismatch for %s", t)
		}
		elems := make([]*core.Constant, n)
		for i := range elems {
			if elems[i], err = r.readConst(); err != nil {
				return nil, err
			}
			var want *core.Type
			if ck == core.ConstArray {
				want = t.Elem()
			} else {
				want = t.Fields()[i]
			}
			if elems[i].Type() != want {
				return nil, fmt.Errorf("aggregate element %d has type %s, want %s",
					i, elems[i].Type(), want)
			}
		}
		if ck == core.ConstArray {
			return core.NewArray(t, elems), nil
		}
		return core.NewStruct(t, elems), nil
	case core.ConstGlobal:
		id, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if id >= uint64(len(r.values)) {
			return nil, fmt.Errorf("bad global id %d in constant", id)
		}
		return core.NewGlobalRef(r.values[id]), nil
	}
	return nil, fmt.Errorf("bad constant kind %d", ck)
}

// readGlobals decodes the symbol tables (global shells then function
// shells), then the global initializers. Shell-first layout means
// initializer ConstGlobal references always resolve.
func (r *reader) readGlobals() error {
	ng, err := r.uvarint()
	if err != nil {
		return err
	}
	type gshell struct {
		g       *core.GlobalVariable
		hasInit bool
	}
	shells := make([]gshell, 0, ng)
	for i := 0; i < int(ng); i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		vt, err := r.readTypeID()
		if err != nil {
			return err
		}
		flags, err := r.byte()
		if err != nil {
			return err
		}
		g := r.m.NewGlobal(name, vt, nil, flags&1 != 0)
		shells = append(shells, gshell{g: g, hasInit: flags&2 != 0})
	}

	nf, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := 0; i < int(nf); i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		sig, err := r.readTypeID()
		if err != nil {
			return err
		}
		flags, err := r.byte()
		if err != nil {
			return err
		}
		f := r.m.NewFunction(name, sig)
		f.Internal = flags&1 != 0
		if flags&2 != 0 {
			r.bodies = append(r.bodies, f)
		}
	}

	// Module value IDs: globals then functions.
	for _, g := range r.m.Globals {
		r.values = append(r.values, g)
	}
	for _, f := range r.m.Functions {
		r.values = append(r.values, f)
	}

	// Initializers.
	for _, s := range shells {
		if !s.hasInit {
			continue
		}
		c, err := r.readConst()
		if err != nil {
			return err
		}
		if c.Type() != s.g.ValueType() {
			return fmt.Errorf("global %%%s initializer type mismatch", s.g.Name())
		}
		s.g.Init = c
	}
	return nil
}
