package obj

import (
	"math/rand"
	"testing"

	"llva/internal/core"
	"llva/internal/minic"
)

// TestDecodeTruncated checks that every prefix of a valid object decodes
// to an error, never a panic or a silently-wrong module.
func TestDecodeTruncated(t *testing.T) {
	m, err := minic.Compile("t.c", `
struct S { int a; struct S *n; };
int f(struct S *s) { if (s == 0) return 0; return s->a + f(s->n); }
int main() { return f(0); }
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := Decode(data[:n]); err == nil {
				t.Errorf("Decode accepted a %d-byte prefix of a %d-byte object", n, len(data))
			}
		}()
	}
}

// TestDecodeBitFlips flips random bytes and requires Decode to either
// error out or produce a module (it may decode to something valid — bit
// flips in names or constants are not detectable — but it must never
// panic).
func TestDecodeBitFlips(t *testing.T) {
	m, err := minic.Compile("t.c", `
long mix(long a, long b) { return a * 31 + b; }
int main() { return (int)(mix(3, 4) % 100); }
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), data...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("Decode panicked on mutated input (trial %d): %v", trial, rec)
				}
			}()
			dm, err := Decode(mut)
			if err == nil && dm != nil {
				// If it decoded, the result must at least be printable;
				// verification may legitimately fail.
				_ = core.Verify(dm)
			}
		}()
	}
}

func TestDecodeGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0, 1, 2, 3},
		[]byte("LLVA"),
		[]byte("not an object at all"),
		append([]byte{'L', 'L', 'V', 'A', Version, 3}, make([]byte, 64)...),
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("input %d: panic %v", i, r)
				}
			}()
			if _, err := Decode(in); err == nil && len(in) < 16 {
				t.Errorf("input %d: garbage accepted", i)
			}
		}()
	}
}
