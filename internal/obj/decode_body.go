package obj

import (
	"fmt"

	"llva/internal/core"
)

// readFunctions decodes the bodies of all defined functions, in the order
// their shells were declared.
func (r *reader) readFunctions() error {
	for _, f := range r.bodies {
		if err := r.readBody(f); err != nil {
			return fmt.Errorf("function %%%s: %w", f.Name(), err)
		}
	}
	return nil
}

// rawInstr is a decoded-but-unwired instruction record.
type rawInstr struct {
	op     core.Opcode
	ee     bool
	ty     *core.Type
	ops    []uint64
	blocks []uint64
	cases  []int64
	alloc  *core.Type
}

func (r *reader) readBody(f *core.Function) error {
	// Local value table: module values, params, constant pool,
	// instruction results.
	values := append([]core.Value(nil), r.values...)
	for _, p := range f.Params {
		values = append(values, p)
	}

	// Constant pool.
	np, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := 0; i < int(np); i++ {
		c, err := r.readConst()
		if err != nil {
			return err
		}
		values = append(values, c)
	}

	nb, err := r.uvarint()
	if err != nil {
		return err
	}
	if nb == 0 {
		return fmt.Errorf("defined function with no blocks")
	}
	blocks := make([]*core.BasicBlock, nb)
	for i := range blocks {
		blocks[i] = f.NewBlock("")
	}

	// Pass 1: decode all instruction records and create result slots.
	var raws []rawInstr
	var blockLens []int
	for bi := 0; bi < int(nb); bi++ {
		ni, err := r.uvarint()
		if err != nil {
			return err
		}
		blockLens = append(blockLens, int(ni))
		for k := 0; k < int(ni); k++ {
			raw, err := r.readInstr()
			if err != nil {
				return err
			}
			raws = append(raws, raw)
		}
	}

	// Create instruction objects (operands wired in pass 2).
	instrs := make([]*core.Instruction, len(raws))
	for i, raw := range raws {
		in := core.NewInstruction(raw.op, raw.ty)
		in.ExceptionsEnabled = raw.op.DefaultExceptionsEnabled() != raw.ee
		in.Allocated = raw.alloc
		in.Cases = raw.cases
		instrs[i] = in
		values = append(values, in)
	}

	// Pass 2: wire operands and blocks, append to blocks.
	idx := 0
	for bi, bb := range blocks {
		for k := 0; k < blockLens[bi]; k++ {
			raw := raws[idx]
			in := instrs[idx]
			idx++
			for _, opid := range raw.ops {
				if opid >= uint64(len(values)) {
					return fmt.Errorf("bad operand id %d", opid)
				}
				in.AddOperand(values[opid])
			}
			for _, bid := range raw.blocks {
				if bid >= uint64(len(blocks)) {
					return fmt.Errorf("bad block id %d", bid)
				}
				in.AddBlock(blocks[bid])
			}
			bb.Append(in)
		}
	}
	f.AssignNames()
	return nil
}

func (r *reader) readInstr() (rawInstr, error) {
	var raw rawInstr
	b0, err := r.byte()
	if err != nil {
		return raw, err
	}
	raw.op = core.Opcode(b0 >> 2)
	if int(raw.op) >= core.NumOpcodes {
		return raw, fmt.Errorf("bad opcode %d", raw.op)
	}
	raw.ee = b0&2 != 0
	compact := b0&1 != 0

	if compact {
		a, err := r.byte()
		if err != nil {
			return raw, err
		}
		b, err := r.byte()
		if err != nil {
			return raw, err
		}
		t, err := r.byte()
		if err != nil {
			return raw, err
		}
		raw.ty, err = r.typeByID(uint64(t))
		if err != nil {
			return raw, err
		}
		if a != 255 {
			raw.ops = append(raw.ops, uint64(a))
		}
		if b != 255 {
			raw.ops = append(raw.ops, uint64(b))
		}
		return raw, nil
	}

	tid, err := r.uvarint()
	if err != nil {
		return raw, err
	}
	raw.ty, err = r.typeByID(tid)
	if err != nil {
		return raw, err
	}
	nops, err := r.uvarint()
	if err != nil {
		return raw, err
	}
	if nops > 1<<16 {
		return raw, fmt.Errorf("too many operands")
	}
	for i := 0; i < int(nops); i++ {
		id, err := r.uvarint()
		if err != nil {
			return raw, err
		}
		raw.ops = append(raw.ops, id)
	}
	nblocks, err := r.uvarint()
	if err != nil {
		return raw, err
	}
	if nblocks > 1<<16 {
		return raw, fmt.Errorf("too many blocks")
	}
	for i := 0; i < int(nblocks); i++ {
		id, err := r.uvarint()
		if err != nil {
			return raw, err
		}
		raw.blocks = append(raw.blocks, id)
	}
	switch raw.op {
	case core.OpMbr:
		nc, err := r.uvarint()
		if err != nil {
			return raw, err
		}
		for i := 0; i < int(nc); i++ {
			c, err := r.svarint()
			if err != nil {
				return raw, err
			}
			raw.cases = append(raw.cases, c)
		}
	case core.OpAlloca:
		raw.alloc, err = r.readTypeID()
		if err != nil {
			return raw, err
		}
	}
	return raw, nil
}
