// Package obj implements the LLVA virtual object code format: a compact
// binary encoding of modules. Following the paper (Section 3.1), the
// instruction encoding is self-extending: most instructions fit a
// fixed-size 32-bit compact form (opcode, exception bit, two operand IDs
// and a type ID, each under 256), and instructions that do not fit use a
// variable-length extended form. Value names are debug information and are
// not stored, which — together with SSA and the absence of
// machine-specific argument-passing/spill code — keeps virtual object code
// smaller than native code (Table 2, columns 3-4).
//
// The module header records the pointer size and endianness flags the
// V-ISA exposes for non-type-safe code (Section 3.2).
package obj

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"llva/internal/core"
)

// Magic identifies LLVA object files.
var Magic = [4]byte{'L', 'L', 'V', 'A'}

// Version is the current format version.
const Version = 1

type writer struct {
	buf bytes.Buffer
	m   *core.Module

	types   map[*core.Type]int
	typeLst []*core.Type

	globalID map[core.Value]int // globals then functions
}

// Encode serializes a module to virtual object code.
func Encode(m *core.Module) ([]byte, error) {
	w := &writer{
		m:        m,
		types:    make(map[*core.Type]int),
		globalID: make(map[core.Value]int),
	}
	return w.run()
}

func (w *writer) run() ([]byte, error) {
	w.buf.Write(Magic[:])
	w.byte(Version)
	flags := byte(0)
	if w.m.LittleEndian {
		flags |= 1
	}
	if w.m.PointerSize == 8 {
		flags |= 2
	}
	w.byte(flags)
	w.str(w.m.Name)

	// Collect types: walk everything.
	w.collectModuleTypes()
	// Type table.
	w.uvarint(uint64(len(w.typeLst)))
	for _, t := range w.typeLst {
		w.writeType(t)
	}

	// Module-level value IDs: globals then functions.
	for i, g := range w.m.Globals {
		w.globalID[g] = i
	}
	for i, f := range w.m.Functions {
		w.globalID[f] = len(w.m.Globals) + i
	}

	// Symbol tables first (global shells, then function shells), so that
	// global initializers can reference functions and later globals.
	w.uvarint(uint64(len(w.m.Globals)))
	for _, g := range w.m.Globals {
		w.str(g.Name())
		w.uvarint(uint64(w.types[g.ValueType()]))
		flags := byte(0)
		if g.IsConst {
			flags |= 1
		}
		if g.Init != nil {
			flags |= 2
		}
		w.byte(flags)
	}
	w.uvarint(uint64(len(w.m.Functions)))
	for _, f := range w.m.Functions {
		w.str(f.Name())
		w.uvarint(uint64(w.types[f.Signature()]))
		flags := byte(0)
		if f.Internal {
			flags |= 1
		}
		if !f.IsDeclaration() {
			flags |= 2
		}
		w.byte(flags)
	}

	// Global initializers.
	for _, g := range w.m.Globals {
		if g.Init != nil {
			if err := w.writeConst(g.Init); err != nil {
				return nil, err
			}
		}
	}

	// Function bodies.
	for _, f := range w.m.Functions {
		if f.IsDeclaration() {
			continue
		}
		if err := w.writeFunction(f); err != nil {
			return nil, err
		}
	}
	return w.buf.Bytes(), nil
}

// ------------------------------------------------------------- primitives

func (w *writer) byte(b byte) { w.buf.WriteByte(b) }

func (w *writer) uvarint(v uint64) {
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) svarint(v int64) {
	var tmp [10]byte
	n := binary.PutVarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) u32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	w.buf.Write(tmp[:])
}

func (w *writer) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.buf.Write(tmp[:])
}

// ------------------------------------------------------------------ types

func (w *writer) typeID(t *core.Type) {
	id, ok := w.types[t]
	if !ok {
		panic("obj: uncollected type " + t.String())
	}
	w.uvarint(uint64(id))
}

// collect assigns an ID to t and its components (post-order so component
// IDs are lower, except recursive named structs which break cycles).
func (w *writer) collect(t *core.Type) {
	if t == nil {
		return
	}
	if _, ok := w.types[t]; ok {
		return
	}
	if t.Kind() == core.StructKind && t.Name() != "" {
		// Named structs may be recursive: assign the ID first.
		w.types[t] = len(w.typeLst)
		w.typeLst = append(w.typeLst, t)
		for _, f := range t.Fields() {
			w.collect(f)
		}
		return
	}
	switch t.Kind() {
	case core.PointerKind, core.ArrayKind:
		w.collect(t.Elem())
	case core.StructKind:
		for _, f := range t.Fields() {
			w.collect(f)
		}
	case core.FunctionKind:
		w.collect(t.Ret())
		for _, p := range t.Params() {
			w.collect(p)
		}
	}
	w.types[t] = len(w.typeLst)
	w.typeLst = append(w.typeLst, t)
}

func (w *writer) collectModuleTypes() {
	for _, g := range w.m.Globals {
		w.collect(g.ValueType())
	}
	for _, f := range w.m.Functions {
		w.collect(f.Signature())
		for _, bb := range f.Blocks {
			for _, in := range bb.Instructions() {
				if in.HasResult() {
					w.collect(in.Type())
				}
				if in.Allocated != nil {
					w.collect(in.Allocated)
				}
				for _, op := range in.Operands() {
					w.collect(op.Type())
				}
			}
		}
	}
}

func (w *writer) writeType(t *core.Type) {
	w.byte(byte(t.Kind()))
	switch t.Kind() {
	case core.PointerKind:
		w.typeID(t.Elem())
	case core.ArrayKind:
		w.uvarint(uint64(t.Len()))
		w.typeID(t.Elem())
	case core.StructKind:
		w.str(t.Name())
		if t.Opaque() {
			w.uvarint(0)
			w.byte(0)
			return
		}
		w.uvarint(uint64(len(t.Fields())))
		w.byte(1)
		for _, f := range t.Fields() {
			w.typeID(f)
		}
	case core.FunctionKind:
		w.typeID(t.Ret())
		w.uvarint(uint64(len(t.Params())))
		for _, p := range t.Params() {
			w.typeID(p)
		}
		if t.Variadic() {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
}

// -------------------------------------------------------------- constants

func (w *writer) writeConst(c *core.Constant) error {
	w.byte(byte(c.CK))
	w.typeID(c.Type())
	switch c.CK {
	case core.ConstInt:
		w.svarint(c.Int64())
	case core.ConstBool:
		w.byte(byte(c.I))
	case core.ConstFloat:
		w.u64(math.Float64bits(c.F))
	case core.ConstNull, core.ConstUndef, core.ConstZero:
	case core.ConstArray, core.ConstStruct:
		w.uvarint(uint64(len(c.Elems)))
		for _, e := range c.Elems {
			if err := w.writeConst(e); err != nil {
				return err
			}
		}
	case core.ConstGlobal:
		id, ok := w.globalID[c.Ref]
		if !ok {
			return fmt.Errorf("obj: constant references unknown global %%%s", c.Ref.Name())
		}
		w.uvarint(uint64(id))
	default:
		return fmt.Errorf("obj: unencodable constant kind %d", c.CK)
	}
	return nil
}

// -------------------------------------------------------------- functions

// Function-local value IDs:
//
//	[0, G)            module globals and functions
//	[G, G+P)          parameters
//	[G+P, G+P+C)      constant pool
//	[G+P+C, ...)      instruction results, in body order (instructions
//	                  without results still consume an ID slot, keeping
//	                  writer and reader numbering in lockstep)
func (w *writer) writeFunction(f *core.Function) error {
	// Build the local value numbering.
	base := len(w.m.Globals) + len(w.m.Functions)
	valueID := make(map[core.Value]int)
	for v, id := range w.globalID {
		valueID[v] = id
	}
	next := base
	for _, p := range f.Params {
		valueID[p] = next
		next++
	}

	// Collect the constant pool (unique scalar constants used as
	// operands), in first-use order.
	var pool []*core.Constant
	seen := make(map[string]int)
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			for _, op := range in.Operands() {
				c, ok := op.(*core.Constant)
				if !ok {
					continue
				}
				key := c.Type().String() + "\x00" + c.Ident()
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = len(pool)
				pool = append(pool, c)
			}
		}
	}
	poolID := make(map[string]int)
	for i, c := range pool {
		poolID[c.Type().String()+"\x00"+c.Ident()] = next + i
	}
	next += len(pool)

	blockID := make(map[*core.BasicBlock]int)
	for i, bb := range f.Blocks {
		blockID[bb] = i
	}
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			valueID[in] = next
			next++
		}
	}

	// Emit pool.
	w.uvarint(uint64(len(pool)))
	for _, c := range pool {
		if err := w.writeConst(c); err != nil {
			return err
		}
	}

	// Emit body.
	w.uvarint(uint64(len(f.Blocks)))
	opID := func(v core.Value) (int, error) {
		if c, ok := v.(*core.Constant); ok {
			return poolID[c.Type().String()+"\x00"+c.Ident()], nil
		}
		id, ok := valueID[v]
		if !ok {
			return 0, fmt.Errorf("obj: operand %s has no ID in %%%s", v.Ident(), f.Name())
		}
		return id, nil
	}
	for _, bb := range f.Blocks {
		w.uvarint(uint64(len(bb.Instructions())))
		for _, in := range bb.Instructions() {
			if err := w.writeInstr(in, opID, blockID); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeInstr emits one instruction: 32-bit compact form when possible,
// extended form otherwise.
func (w *writer) writeInstr(in *core.Instruction,
	opID func(core.Value) (int, error), blockID map[*core.BasicBlock]int) error {

	eeBit := byte(0)
	if in.ExceptionsEnabled != in.Op().DefaultExceptionsEnabled() {
		eeBit = 1
	}
	tid := w.types[in.Type()]

	// Try the compact 32-bit form: [op:6|ee:1|ext:0] [a] [b] [t] — up to
	// two operands, no attached blocks, no extras, all fields < 256.
	if in.NumBlocks() == 0 && in.Allocated == nil && len(in.Cases) == 0 &&
		in.NumOperands() <= 2 && tid < 256 && in.Op() != core.OpCall {
		ids := [2]int{255, 255} // 255 = "no operand" sentinel? No: encode count in opcode space.
		ok := in.NumOperands() <= 2
		for i := 0; i < in.NumOperands(); i++ {
			id, err := opID(in.Operand(i))
			if err != nil {
				return err
			}
			if id >= 255 {
				ok = false
				break
			}
			ids[i] = id
		}
		// Operand count must be recoverable: binary ops always have 2,
		// load/cast 1, ret 0/1. Use sentinel 255 for "absent".
		if ok {
			w.byte(byte(in.Op())<<2 | eeBit<<1 | 1)
			w.byte(byte(ids[0]))
			w.byte(byte(ids[1]))
			w.byte(byte(tid))
			return nil
		}
	}

	// Extended form.
	w.byte(byte(in.Op())<<2 | eeBit<<1)
	w.uvarint(uint64(tid))
	w.uvarint(uint64(in.NumOperands()))
	for _, op := range in.Operands() {
		id, err := opID(op)
		if err != nil {
			return err
		}
		w.uvarint(uint64(id))
	}
	w.uvarint(uint64(in.NumBlocks()))
	for _, bb := range in.Blocks() {
		w.uvarint(uint64(blockID[bb]))
	}
	switch in.Op() {
	case core.OpMbr:
		w.uvarint(uint64(len(in.Cases)))
		for _, c := range in.Cases {
			w.svarint(c)
		}
	case core.OpAlloca:
		w.uvarint(uint64(w.types[in.Allocated]))
	}
	return nil
}
