package passes

import (
	"llva/internal/core"
)

// InlineThreshold is the maximum callee size (in instructions) eligible
// for inlining.
var InlineThreshold = 40

// Inline performs bottom-up function inlining of small, non-recursive
// callees at direct call sites — the interprocedural optimization most
// dependent on the accurate call graph the LLVA representation provides
// (paper, Section 5.1).
func Inline(m *core.Module, s *Stats) bool {
	changed := false
	for _, f := range m.Functions {
		if f.IsDeclaration() {
			continue
		}
		// Collect call sites first; inlining mutates the block list.
		var sites []*core.Instruction
		for _, bb := range f.Blocks {
			for _, in := range bb.Instructions() {
				if in.Op() != core.OpCall {
					continue
				}
				callee := in.CalledFunction()
				if callee == nil || callee == f || callee.IsDeclaration() ||
					callee.IsIntrinsic() {
					continue
				}
				if callee.NumInstructions() > InlineThreshold {
					continue
				}
				if hasExceptionalFlow(callee) || callsItself(callee) {
					continue
				}
				sites = append(sites, in)
			}
		}
		for _, call := range sites {
			if call.Parent() == nil {
				continue // removed by an earlier inline in this loop
			}
			inlineCall(f, call, s)
			changed = true
		}
	}
	return changed
}

// CanInline reports whether callee's body is structurally eligible for
// inlining (no exceptional flow, not directly recursive). Size policy is
// the caller's: Inline applies InlineThreshold, the tier-2 translator
// uses a larger profile-driven budget.
func CanInline(callee *core.Function) bool {
	return !hasExceptionalFlow(callee) && !callsItself(callee)
}

// InlineCall inlines one eligible direct call site into caller. The
// callee must satisfy CanInline. New blocks are appended to
// caller.Blocks: first the split continuation, then the cloned callee
// body, so callers can attribute them (e.g. carry over profile heat).
func InlineCall(caller *core.Function, call *core.Instruction) {
	inlineCall(caller, call, NewStats())
}

func hasExceptionalFlow(f *core.Function) bool {
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpUnwind || in.Op() == core.OpInvoke {
				return true
			}
		}
	}
	return false
}

func callsItself(f *core.Function) bool {
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if (in.Op() == core.OpCall || in.Op() == core.OpInvoke) && in.CalledFunction() == f {
				return true
			}
		}
	}
	return false
}

func inlineCall(caller *core.Function, call *core.Instruction, s *Stats) {
	callee := call.CalledFunction()
	bb := call.Parent()

	// 1. Split bb at the call: instructions after the call move to cont.
	cont := caller.NewBlock(bb.Name() + ".cont")
	instrs := bb.Instructions()
	callIdx := -1
	for i, in := range instrs {
		if in == call {
			callIdx = i
			break
		}
	}
	tail := append([]*core.Instruction(nil), instrs[callIdx+1:]...)
	for _, in := range tail {
		in.MoveTo(cont)
	}
	// Successor phis referring to bb now refer to cont (the terminator
	// moved there).
	for _, sc := range cont.Successors() {
		for _, phi := range sc.Phis() {
			for i := 0; i < phi.NumBlocks(); i++ {
				if phi.Block(i) == bb {
					phi.SetBlock(i, cont)
				}
			}
		}
	}

	// 2. Clone the callee body.
	vmap := make(map[core.Value]core.Value)
	for i, p := range callee.Params {
		vmap[p] = call.CallArgs()[i]
	}
	bmap := make(map[*core.BasicBlock]*core.BasicBlock, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock(callee.Name() + "." + cb.Name())
		bmap[cb] = nb
	}
	// Two passes: create clones, then wire operands.
	var clones []*core.Instruction
	var origs []*core.Instruction
	for _, cb := range callee.Blocks {
		for _, in := range cb.Instructions() {
			cl := core.NewInstruction(in.Op(), in.Type())
			cl.ExceptionsEnabled = in.ExceptionsEnabled
			cl.Allocated = in.Allocated
			cl.Cases = append([]int64(nil), in.Cases...)
			cl.SetName(in.Name())
			bmap[cb].Append(cl)
			vmap[in] = cl
			clones = append(clones, cl)
			origs = append(origs, in)
		}
	}
	mapv := func(v core.Value) core.Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}
	var rets []*core.Instruction
	for k, cl := range clones {
		orig := origs[k]
		for _, op := range orig.Operands() {
			cl.AddOperand(mapv(op))
		}
		for _, ob := range orig.Blocks() {
			cl.AddBlock(bmap[ob])
		}
		if cl.Op() == core.OpRet {
			rets = append(rets, cl)
		}
	}

	// 3. bb branches to the cloned entry.
	br := core.NewInstruction(core.OpBr, caller.Parent().Types().Void())
	br.AddBlock(bmap[callee.Entry()])
	bb.Append(br)

	// 4. Rets become branches to cont; return values merge via phi.
	var retVals []core.Value
	var retBlocks []*core.BasicBlock
	for _, r := range rets {
		if r.NumOperands() == 1 {
			retVals = append(retVals, r.Operand(0))
			retBlocks = append(retBlocks, r.Parent())
		} else {
			retBlocks = append(retBlocks, r.Parent())
		}
		rbb := r.Parent()
		r.EraseFromParent()
		nbr := core.NewInstruction(core.OpBr, caller.Parent().Types().Void())
		nbr.AddBlock(cont)
		rbb.Append(nbr)
	}

	// 5. Replace the call result.
	if call.HasResult() && call.NumUses() > 0 {
		var repl core.Value
		if len(retVals) == 1 {
			repl = retVals[0]
		} else if len(retVals) > 1 {
			phi := core.NewInstruction(core.OpPhi, call.Type())
			phi.SetName(callee.Name() + ".ret")
			for i, v := range retVals {
				phi.AddPhiIncoming(v, retBlocks[i])
			}
			cont.InsertAt(0, phi)
			repl = phi
		} else {
			repl = core.NewUndef(call.Type())
		}
		core.ReplaceAllUsesWith(call, repl)
	}
	call.EraseFromParent()
	s.Add("inline.sites", 1)
}

// DeadGlobals removes internal functions and globals with no remaining
// uses (dead global elimination, run after inlining).
func DeadGlobals(m *core.Module, s *Stats) bool {
	changed := false
	for {
		c := false
		for _, f := range append([]*core.Function(nil), m.Functions...) {
			if f.Internal && f.NumUses() == 0 && f.Name() != "main" && !f.IsDeclaration() {
				m.RemoveFunction(f)
				s.Add("deadglobals.functions", 1)
				c = true
			}
		}
		for _, g := range append([]*core.GlobalVariable(nil), m.Globals...) {
			if g.NumUses() == 0 && !referencedByInits(m, g) {
				m.RemoveGlobal(g)
				s.Add("deadglobals.globals", 1)
				c = true
			}
		}
		if !c {
			break
		}
		changed = true
	}
	return changed
}

func referencedByInits(m *core.Module, g *core.GlobalVariable) bool {
	var scan func(c *core.Constant) bool
	scan = func(c *core.Constant) bool {
		if c == nil {
			return false
		}
		if c.CK == core.ConstGlobal && c.Ref == core.Value(g) {
			return true
		}
		for _, e := range c.Elems {
			if scan(e) {
				return true
			}
		}
		return false
	}
	for _, other := range m.Globals {
		if other != g && scan(other.Init) {
			return true
		}
	}
	return false
}
