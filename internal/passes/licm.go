package passes

import (
	"llva/internal/analysis"
	"llva/internal/core"
)

// LICM hoists loop-invariant pure instructions into a preheader block —
// a classical optimization that needs exactly the information LLVA makes
// explicit: the CFG (loop structure), SSA (invariance is "all operands
// defined outside the loop"), and the exception model (an instruction
// with ExceptionsEnabled=false may be hoisted even if it could trap).
func LICM(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		cfg := analysis.NewCFG(f)
		dt := analysis.NewDomTreeCFG(cfg)
		li := analysis.NewLoopInfo(dt)
		changed := false
		// Process outer loops after inner ones so code hoists as far as
		// it can in multiple rounds.
		for _, l := range li.Loops {
			if hoistLoop(f, cfg, l, s) {
				changed = true
			}
		}
		return changed
	})
}

// preheader finds or creates the unique block that branches to the loop
// header from outside the loop.
func preheader(f *core.Function, cfg *analysis.CFG, l *analysis.Loop) *core.BasicBlock {
	header := cfg.Blocks[l.Header]
	var outside []*core.BasicBlock
	for _, p := range header.Predecessors() {
		if !l.Contains(cfg.Index[p]) {
			outside = append(outside, p)
		}
	}
	if len(outside) != 1 {
		// Creating a fresh preheader and rewiring multiple entry edges is
		// possible but rarely needed for front-end-generated loops (the
		// for/while lowerings produce a unique entry edge).
		return nil
	}
	pred := outside[0]
	t := pred.Terminator()
	if t == nil || t.Op() != core.OpBr {
		return nil
	}
	return pred
}

func hoistLoop(f *core.Function, cfg *analysis.CFG, l *analysis.Loop, s *Stats) bool {
	pre := preheader(f, cfg, l)
	if pre == nil {
		return false
	}
	inLoop := func(v core.Value) bool {
		in, ok := v.(*core.Instruction)
		if !ok {
			return false
		}
		if in.Parent() == nil {
			return false
		}
		bi, ok := cfg.Index[in.Parent()]
		return ok && l.Contains(bi)
	}

	changed := false
	// Iterate: hoisting one instruction can make another invariant.
	for {
		hoisted := false
		for _, bi := range l.Blocks {
			bb := cfg.Blocks[bi]
			for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
				if !isPure(in) || !in.HasResult() || in.Op() == core.OpPhi {
					continue
				}
				invariant := true
				for _, op := range in.Operands() {
					if inLoop(op) {
						invariant = false
						break
					}
				}
				if !invariant {
					continue
				}
				// Move before the preheader's terminator.
				term := pre.Terminator()
				in.MoveTo(pre)
				// MoveTo appends after the terminator; reorder.
				reorderBeforeTerminator(pre, in, term)
				s.Add("licm.hoisted", 1)
				hoisted = true
				changed = true
			}
		}
		if !hoisted {
			break
		}
	}
	return changed
}

// reorderBeforeTerminator fixes the instruction order after MoveTo placed
// in after the block terminator.
func reorderBeforeTerminator(bb *core.BasicBlock, in, term *core.Instruction) {
	instrs := bb.Instructions()
	// in is last; term should be last.
	if len(instrs) < 2 || instrs[len(instrs)-1] != in {
		return
	}
	for i, x := range instrs {
		if x == term {
			copy(instrs[i+1:], instrs[i:len(instrs)-1])
			instrs[i] = in
			return
		}
	}
}
