package passes

import (
	"llva/internal/core"
)

// SimplifyCFG folds constant branches, removes unreachable blocks, and
// merges blocks with a single unconditional predecessor.
func SimplifyCFG(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		changed := false
		for {
			c := false
			c = foldBranches(f, s) || c
			c = removeUnreachable(f, s) || c
			c = mergeBlocks(f, s) || c
			if !c {
				break
			}
			changed = true
		}
		return changed
	})
}

// removePhiEdge drops bb's incoming entries for pred on every phi in bb.
func removePhiEdge(bb, pred *core.BasicBlock) {
	for _, phi := range bb.Phis() {
		for i := 0; i < phi.NumBlocks(); {
			if phi.Block(i) == pred {
				phi.RemovePhiIncoming(i)
			} else {
				i++
			}
		}
	}
}

// foldBranches rewrites conditional branches on constants and mbr on
// constants into unconditional branches.
func foldBranches(f *core.Function, s *Stats) bool {
	changed := false
	for _, bb := range f.Blocks {
		t := bb.Terminator()
		if t == nil {
			continue
		}
		switch t.Op() {
		case core.OpBr:
			if t.NumBlocks() != 2 {
				// Also normalize br cond, X, X.
				continue
			}
			if t.Block(0) == t.Block(1) {
				target := t.Block(0)
				replaceTerminatorWithBr(bb, t, target)
				s.Add("simplifycfg.brsame", 1)
				changed = true
				continue
			}
			c, ok := t.Operand(0).(*core.Constant)
			if !ok {
				continue
			}
			var taken, dead *core.BasicBlock
			if c.I&1 != 0 {
				taken, dead = t.Block(0), t.Block(1)
			} else {
				taken, dead = t.Block(1), t.Block(0)
			}
			replaceTerminatorWithBr(bb, t, taken)
			removePhiEdge(dead, bb)
			s.Add("simplifycfg.constbr", 1)
			changed = true
		case core.OpMbr:
			c, ok := t.Operand(0).(*core.Constant)
			if !ok {
				continue
			}
			taken := t.Block(0)
			for i, cv := range t.Cases {
				if cv == c.Int64() {
					taken = t.Block(i + 1)
					break
				}
			}
			// Remove phi edges from every non-taken unique target.
			seen := map[*core.BasicBlock]bool{taken: true}
			for _, tgt := range t.Blocks() {
				if !seen[tgt] {
					seen[tgt] = true
					removePhiEdge(tgt, bb)
				}
			}
			replaceTerminatorWithBr(bb, t, taken)
			s.Add("simplifycfg.constmbr", 1)
			changed = true
		}
	}
	return changed
}

func replaceTerminatorWithBr(bb *core.BasicBlock, t *core.Instruction, target *core.BasicBlock) {
	t.EraseFromParent()
	br := core.NewInstruction(core.OpBr, bb.Parent().Parent().Types().Void())
	br.AddBlock(target)
	bb.Append(br)
}

// removeUnreachable deletes blocks not reachable from the entry.
func removeUnreachable(f *core.Function, s *Stats) bool {
	reachable := make(map[*core.BasicBlock]bool)
	var stack []*core.BasicBlock
	stack = append(stack, f.Entry())
	reachable[f.Entry()] = true
	for len(stack) > 0 {
		bb := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sc := range bb.Successors() {
			if !reachable[sc] {
				reachable[sc] = true
				stack = append(stack, sc)
			}
		}
	}
	var dead []*core.BasicBlock
	for _, bb := range f.Blocks {
		if !reachable[bb] {
			dead = append(dead, bb)
		}
	}
	if len(dead) == 0 {
		return false
	}
	// Unlink phi edges from dead predecessors, then clear instruction
	// uses inside dead blocks before removal.
	for _, bb := range dead {
		for _, sc := range bb.Successors() {
			if reachable[sc] {
				removePhiEdge(sc, bb)
			}
		}
	}
	for _, bb := range dead {
		for _, in := range bb.Instructions() {
			if in.NumUses() > 0 {
				core.ReplaceAllUsesWith(in, core.NewUndef(in.Type()))
			}
		}
	}
	for _, bb := range dead {
		f.RemoveBlock(bb)
		s.Add("simplifycfg.deadblocks", 1)
	}
	return true
}

// mergeBlocks merges a block into its unique unconditional predecessor
// and removes empty forwarding blocks.
func mergeBlocks(f *core.Function, s *Stats) bool {
	changed := false
	for _, bb := range append([]*core.BasicBlock(nil), f.Blocks...) {
		if bb.Parent() == nil || bb == f.Entry() {
			continue
		}
		preds := bb.Predecessors()
		if len(preds) != 1 {
			continue
		}
		pred := preds[0]
		pt := pred.Terminator()
		if pt == nil || pt.Op() != core.OpBr || pt.NumBlocks() != 1 || pred == bb {
			continue
		}
		// Phis in bb with a single predecessor are trivial: replace.
		for _, phi := range bb.Phis() {
			core.ReplaceAllUsesWith(phi, phi.Operand(0))
			phi.EraseFromParent()
		}
		// Move instructions from bb into pred.
		pt.EraseFromParent()
		for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
			in.MoveTo(pred)
		}
		// Successor phis must now name pred instead of bb.
		for _, sc := range pred.Successors() {
			for _, phi := range sc.Phis() {
				for i := 0; i < phi.NumBlocks(); i++ {
					if phi.Block(i) == bb {
						phi.SetBlock(i, pred)
					}
				}
			}
		}
		if bb.NumUses() > 0 {
			// Should not happen: remaining label uses would be stale.
			continue
		}
		f.RemoveBlock(bb)
		s.Add("simplifycfg.merged", 1)
		changed = true
	}
	return changed
}
