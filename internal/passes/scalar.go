package passes

import (
	"llva/internal/analysis"
	"llva/internal/core"
)

// ConstProp performs sparse conditional-style constant propagation:
// instructions whose operands are all constants are folded, iterating
// until no more folds fire. (Branch folding on the resulting constants is
// done by SimplifyCFG.)
func ConstProp(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		changed := false
		for {
			c := false
			for _, bb := range f.Blocks {
				for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
					if folded := tryFold(m, in); folded != nil {
						core.ReplaceAllUsesWith(in, folded)
						in.EraseFromParent()
						s.Add("constprop.folded", 1)
						c = true
					}
				}
			}
			if !c {
				break
			}
			changed = true
		}
		return changed
	})
}

// tryFold returns the constant an instruction evaluates to, or nil.
func tryFold(m *core.Module, in *core.Instruction) *core.Constant {
	op := in.Op()
	constOp := func(i int) *core.Constant {
		c, _ := in.Operand(i).(*core.Constant)
		return c
	}
	switch {
	case op == core.OpShl || op == core.OpShr:
		x, amt := constOp(0), constOp(1)
		if x == nil || amt == nil {
			return nil
		}
		return core.FoldShift(op, x, amt)
	case op.IsBinary():
		x, y := constOp(0), constOp(1)
		if x == nil || y == nil {
			return nil
		}
		return core.FoldBinary(m.Types(), op, x, y)
	case op == core.OpCast:
		x := constOp(0)
		if x == nil {
			return nil
		}
		return core.FoldCast(x, in.Type())
	case op == core.OpPhi:
		// A phi whose incoming values are all the same constant folds.
		if in.NumOperands() == 0 {
			return nil
		}
		first := constOp(0)
		if first == nil {
			return nil
		}
		for i := 1; i < in.NumOperands(); i++ {
			c := constOp(i)
			if c == nil || !core.ConstantEqual(first, c) {
				return nil
			}
		}
		return first
	}
	return nil
}

// DCE removes trivially dead instructions (unused, pure) until fixpoint,
// including dead phi cycles (phis only used by other dead phis).
func DCE(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		changed := false
		for {
			c := false
			for _, bb := range f.Blocks {
				for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
					if eraseDeadInstr(in) {
						s.Add("dce.removed", 1)
						c = true
					}
				}
			}
			if removeDeadPhiCycles(f, s) {
				c = true
			}
			if !c {
				break
			}
			changed = true
		}
		return changed
	})
}

// removeDeadPhiCycles deletes phis whose only (transitive) users are phis
// in the same dead set.
func removeDeadPhiCycles(f *core.Function, s *Stats) bool {
	// live = any phi used by a non-phi user, propagated backwards.
	var phis []*core.Instruction
	for _, bb := range f.Blocks {
		phis = append(phis, bb.Phis()...)
	}
	if len(phis) == 0 {
		return false
	}
	live := make(map[*core.Instruction]bool)
	var mark func(*core.Instruction)
	mark = func(p *core.Instruction) {
		if live[p] {
			return
		}
		live[p] = true
		for _, op := range p.Operands() {
			if q, ok := op.(*core.Instruction); ok && q.Op() == core.OpPhi {
				mark(q)
			}
		}
	}
	for _, p := range phis {
		for _, u := range p.Uses() {
			if u.User.Op() != core.OpPhi {
				mark(p)
				break
			}
		}
	}
	changed := false
	for _, p := range phis {
		if live[p] {
			continue
		}
		// Break the cycle: drop operands first, then erase.
		core.ReplaceAllUsesWith(p, core.NewUndef(p.Type()))
		p.EraseFromParent()
		s.Add("dce.deadphis", 1)
		changed = true
	}
	return changed
}

// ADCE is aggressive DCE: it assumes instructions dead until proven live
// (roots are stores, calls, terminators and other side-effecting
// operations) and deletes everything unmarked.
func ADCE(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		live := make(map[*core.Instruction]bool)
		var work []*core.Instruction
		for _, bb := range f.Blocks {
			for _, in := range bb.Instructions() {
				if !isPure(in) {
					live[in] = true
					work = append(work, in)
				}
			}
		}
		for len(work) > 0 {
			in := work[len(work)-1]
			work = work[:len(work)-1]
			for _, op := range in.Operands() {
				if d, ok := op.(*core.Instruction); ok && !live[d] {
					live[d] = true
					work = append(work, d)
				}
			}
		}
		changed := false
		for _, bb := range f.Blocks {
			for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
				if live[in] {
					continue
				}
				if in.NumUses() > 0 {
					core.ReplaceAllUsesWith(in, core.NewUndef(in.Type()))
				}
				in.EraseFromParent()
				s.Add("adce.removed", 1)
				changed = true
			}
		}
		return changed
	})
}

// CSE performs dominator-scoped common subexpression elimination over
// pure instructions (global value numbering lite): two instructions with
// the same opcode, type and operands compute the same value; the
// dominating one replaces the other.
func CSE(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		cfg := analysis.NewCFG(f)
		dt := analysis.NewDomTreeCFG(cfg)
		changed := false

		type scope map[string]*core.Instruction
		var walk func(b int, table []scope)
		walk = func(b int, table []scope) {
			local := make(scope)
			table = append(table, local)
			bb := cfg.Blocks[b]
			for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
				if !cseable(in) {
					continue
				}
				key := cseKey(in)
				var found *core.Instruction
				for i := len(table) - 1; i >= 0 && found == nil; i-- {
					found = table[i][key]
				}
				if found != nil {
					core.ReplaceAllUsesWith(in, found)
					in.EraseFromParent()
					s.Add("cse.removed", 1)
					changed = true
					continue
				}
				local[key] = in
			}
			for _, ch := range dt.Children[b] {
				walk(ch, table)
			}
		}
		walk(0, nil)
		return changed
	})
}

func cseable(in *core.Instruction) bool {
	switch in.Op() {
	case core.OpPhi, core.OpLoad:
		return false
	}
	return isPure(in) && in.HasResult()
}

func cseKey(in *core.Instruction) string {
	key := in.Op().String() + ":" + in.Type().String()
	for _, op := range in.Operands() {
		key += "|" + operandKey(op)
	}
	return key
}

func operandKey(v core.Value) string {
	switch x := v.(type) {
	case *core.Constant:
		return "c" + x.Type().String() + " " + x.Ident()
	default:
		// identity-based: use the pointer via a stable per-value name
		return valueKey(v)
	}
}

// valueKeys assigns stable unique IDs to values for CSE keys.
var valueKeys = map[core.Value]string{}
var valueKeyN int

func valueKey(v core.Value) string {
	if k, ok := valueKeys[v]; ok {
		return k
	}
	valueKeyN++
	k := "v" + itoa(valueKeyN)
	valueKeys[v] = k
	return k
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// LoadElim forwards stored values to subsequent loads within a basic
// block when the alias analysis proves the addresses equal and no
// intervening instruction may write the location — redundant-load
// elimination enabled by the typed representation.
func LoadElim(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		changed := false
		for _, bb := range f.Blocks {
			// available: address value -> last value stored/loaded
			avail := make(map[core.Value]core.Value)
			for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
				switch in.Op() {
				case core.OpStore:
					// invalidate may-aliasing entries
					for addr := range avail {
						if analysis.Alias(addr, in.Operand(1)) != analysis.NoAlias {
							delete(avail, addr)
						}
					}
					avail[in.Operand(1)] = in.Operand(0)
				case core.OpLoad:
					addr := in.Operand(0)
					if v, ok := avail[addr]; ok && v.Type() == in.Type() {
						core.ReplaceAllUsesWith(in, v)
						in.EraseFromParent()
						s.Add("loadelim.forwarded", 1)
						changed = true
						continue
					}
					avail[addr] = in
				case core.OpCall, core.OpInvoke:
					// calls may write anything except provably local,
					// non-escaping allocas
					for addr := range avail {
						base, isLocal := analysis.Base(addr)
						if !isLocal || analysis.Escapes(base) {
							delete(avail, addr)
						}
					}
				}
			}
		}
		return changed
	})
}
