package passes

import (
	"llva/internal/analysis"
	"llva/internal/core"
)

// PoolAllocate implements Automatic Pool Allocation (paper, Section 5.1:
// "a powerful interprocedural transformation that uses Data Structure
// Analysis to partition the heap into separate pools for each data
// structure instance"). Every disjoint heap structure identified by DSA
// receives its own pool id; its malloc/calloc sites become pool_alloc
// calls and frees of pointers provably inside a pooled structure become
// pool_free (arena semantics in the runtime).
//
// Correctness does not depend on the precision of the analysis: pools
// satisfy the same allocation contract as malloc, and frees that cannot
// be attributed to a pool are left untouched.
func PoolAllocate(m *core.Module, s *Stats) bool {
	dsa := analysis.NewDSA(m)
	heapNodes := dsa.HeapStructures()
	if len(heapNodes) == 0 {
		return false
	}

	ctx := m.Types()
	sp := ctx.Pointer(ctx.SByte())
	poolAllocFn := m.Function("pool_alloc")
	if poolAllocFn == nil {
		poolAllocFn = m.NewFunction("pool_alloc",
			ctx.Function(sp, []*core.Type{ctx.ULong(), ctx.ULong()}, false))
	}
	poolFreeFn := m.Function("pool_free")
	if poolFreeFn == nil {
		poolFreeFn = m.NewFunction("pool_free",
			ctx.Function(ctx.Void(), []*core.Type{ctx.ULong(), sp}, false))
	}

	// Assign pool ids.
	poolID := make(map[*analysis.DSNode]uint64, len(heapNodes))
	for i, n := range heapNodes {
		poolID[n] = uint64(i)
	}
	s.Add("poolalloc.pools", len(heapNodes))

	changed := false
	for _, node := range heapNodes {
		id := core.NewUint(ctx.ULong(), poolID[node])
		for _, site := range node.HeapSites {
			if site.Parent() == nil {
				continue // already rewritten (merged duplicate record)
			}
			callee := site.CalledFunction()
			if callee == nil {
				continue
			}
			bb := site.Parent()
			var size core.Value
			switch callee.Name() {
			case "malloc":
				size = site.CallArgs()[0]
			case "calloc":
				// calloc(n, elem) allocates n*elem zeroed bytes; pool
				// allocations are zeroed by the runtime too.
				mul := core.NewInstruction(core.OpMul, ctx.ULong(),
					site.CallArgs()[0], site.CallArgs()[1])
				bb.InsertBefore(site, mul)
				size = mul
			default:
				continue
			}
			repl := core.NewInstruction(core.OpCall, sp, poolAllocFn, id, size)
			bb.InsertBefore(site, repl)
			repl.SetName(site.Name())
			core.ReplaceAllUsesWith(site, repl)
			site.EraseFromParent()
			s.Add("poolalloc.allocs", 1)
			changed = true
		}
	}

	// Rewrite frees whose operand provably belongs to a pooled structure.
	freeFn := m.Function("free")
	if freeFn != nil {
		for _, u := range freeFn.Uses() {
			call := u.User
			if call.Op() != core.OpCall || u.Index != 0 || call.Parent() == nil {
				continue
			}
			ptr := call.CallArgs()[0]
			node := dsa.NodeOf(ptr)
			id, pooled := poolID[node]
			if node == nil || !pooled {
				continue
			}
			bb := call.Parent()
			repl := core.NewInstruction(core.OpCall, ctx.Void(), poolFreeFn,
				core.NewUint(ctx.ULong(), id), ptr)
			bb.InsertBefore(call, repl)
			call.EraseFromParent()
			s.Add("poolalloc.frees", 1)
			changed = true
		}
	}
	return changed
}
