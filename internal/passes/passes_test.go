package passes

import (
	"strings"
	"testing"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/minic"
)

// programs exercising every pass, each printing deterministic output.
var testPrograms = map[string]string{
	"loops": `
int main() {
	int i, sum = 0;
	for (i = 0; i < 100; i++) {
		int invariant = 37 * 41;     /* licm + constprop */
		sum += i * invariant;
	}
	print_int(sum); print_nl();
	return 0;
}`,
	"calls": `
static int square(int x) { return x * x; }
static int cube(int x) { return x * square(x); }
int main() {
	int i, acc = 0;
	for (i = 1; i <= 10; i++) acc += cube(i);
	print_int(acc); print_nl();
	return 0;
}`,
	"memory": `
struct P { int x; int y; };
int main() {
	struct P pts[8];
	int i;
	for (i = 0; i < 8; i++) { pts[i].x = i; pts[i].y = i * i; }
	int best = 0;
	for (i = 0; i < 8; i++) {
		if (pts[i].y - pts[i].x > best) best = pts[i].y - pts[i].x;
	}
	print_int(best); print_nl();
	return 0;
}`,
	"branches": `
int categorize(int x) {
	switch (x % 5) {
	case 0: return 1;
	case 1: return 2;
	case 2: return 4;
	case 3: return 8;
	default: return 16;
	}
}
int main() {
	int i, bits = 0;
	for (i = 0; i < 25; i++) bits += categorize(i);
	print_int(bits); print_nl();
	return 0;
}`,
	"strength": `
int main() {
	unsigned int x = 1000;
	unsigned int a = x * 8;      /* -> shl */
	unsigned int b = x / 4;      /* -> shr */
	unsigned int c = x % 16;     /* -> and */
	print_uint(a + b + c); print_nl();
	return 0;
}`,
	"floats": `
double series(int n) {
	double s = 0.0;
	int i;
	for (i = 1; i <= n; i++) s += 1.0 / (double)(i * i);
	return s;
}
int main() {
	print_float(series(50)); print_nl();
	return 0;
}`,
}

func runModule(t *testing.T, m *core.Module) string {
	t.Helper()
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	if _, err := ip.RunMain(); err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	return out.String()
}

// TestO2PreservesSemantics compiles each program, captures its output,
// optimizes with the full pipeline (verifying after every pass), and
// checks the output is unchanged.
func TestO2PreservesSemantics(t *testing.T) {
	for name, src := range testPrograms {
		t.Run(name, func(t *testing.T) {
			m1, err := minic.Compile(name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			before := runModule(t, m1)

			m2, err := minic.Compile(name+".c", src)
			if err != nil {
				t.Fatal(err)
			}
			pipe := O2()
			pipe.Verify = true
			s := NewStats()
			if _, err := pipe.Run(m2, s); err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			after := runModule(t, m2)
			if before != after {
				t.Errorf("output changed:\nbefore: %q\nafter:  %q\nstats:\n%s",
					before, after, s)
			}
		})
	}
}

// TestO2Shrinks checks the pipeline actually reduces instruction counts on
// alloca-heavy front-end output.
func TestO2Shrinks(t *testing.T) {
	m, err := minic.Compile("t.c", testPrograms["calls"])
	if err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, f := range m.Functions {
		before += f.NumInstructions()
	}
	s := NewStats()
	if _, err := O2().Run(m, s); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, f := range m.Functions {
		after += f.NumInstructions()
	}
	if after >= before {
		t.Errorf("O2 did not shrink the program: %d -> %d\n%s", before, after, s)
	}
	if s.Counts["mem2reg.promoted"] == 0 {
		t.Error("mem2reg promoted nothing")
	}
	if s.Counts["inline.sites"] == 0 {
		t.Error("inliner fired at no site")
	}
}

func TestMem2RegPromotesFigure2Style(t *testing.T) {
	src := `
int %f(int %x) {
entry:
    %a = alloca int
    store int %x, int* %a
    %c = setgt int %x, 10
    br bool %c, label %big, label %small
big:
    %v1 = load int* %a
    %v2 = mul int %v1, 2
    store int %v2, int* %a
    br label %join
small:
    br label %join
join:
    %r = load int* %a
    ret int %r
}
`
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStats()
	Mem2Reg(m, s)
	if err := core.Verify(m); err != nil {
		t.Fatalf("verify after mem2reg: %v", err)
	}
	f := m.Function("f")
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpAlloca || in.Op() == core.OpLoad || in.Op() == core.OpStore {
				t.Errorf("mem2reg left %s in %%%s", in.Op(), bb.Name())
			}
		}
	}
	// A phi must merge the two paths.
	if len(f.Block("join").Phis()) != 1 {
		t.Errorf("expected exactly 1 phi in join, got %d", len(f.Block("join").Phis()))
	}
	// Semantics: f(20) == 40, f(5) == 5.
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.Run("f", 20); int32(v) != 40 {
		t.Errorf("f(20) = %d, want 40", int32(v))
	}
	if v, _ := ip.Run("f", 5); int32(v) != 5 {
		t.Errorf("f(5) = %d, want 5", int32(v))
	}
}

func TestExceptionAttributeGatesDCE(t *testing.T) {
	// A div with ExceptionsEnabled=true and an unused result must NOT be
	// deleted (its trap is observable); with the attribute off it must be
	// deleted (paper, Section 3.3).
	src := `
int %f(int %x) {
entry:
    %dead1 = div int %x, 0
    %dead2 = div int %x, 0 !noexc
    ret int %x
}
`
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStats()
	DCE(m, s)
	f := m.Function("f")
	divs := 0
	for _, in := range f.Entry().Instructions() {
		if in.Op() == core.OpDiv {
			divs++
			if !in.ExceptionsEnabled {
				t.Error("the suppressed-exception div survived DCE")
			}
		}
	}
	if divs != 1 {
		t.Errorf("got %d divs after DCE, want 1 (trapping one kept)", divs)
	}
}

func TestSimplifyCFGFoldsConstantBranch(t *testing.T) {
	src := `
int %f() {
entry:
    br bool true, label %a, label %b
a:
    ret int 1
b:
    ret int 2
}
`
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStats()
	SimplifyCFG(m, s)
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	f := m.Function("f")
	if len(f.Blocks) != 1 {
		t.Errorf("got %d blocks, want 1 after folding", len(f.Blocks))
	}
	var out strings.Builder
	ip, _ := interp.New(m, &out)
	if v, _ := ip.Run("f"); int32(v) != 1 {
		t.Errorf("f() = %d, want 1", int32(v))
	}
}

func TestCSEEliminatesRedundantGEP(t *testing.T) {
	src := `
%struct.P = type { long, long }
long %f(%struct.P* %p) {
entry:
    %a1 = getelementptr %struct.P* %p, long 0, ubyte 1
    %v1 = load long* %a1
    %a2 = getelementptr %struct.P* %p, long 0, ubyte 1
    %v2 = load long* %a2
    %s = add long %v1, %v2
    ret long %s
}
`
	m, err := asm.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStats()
	CSE(m, s)
	LoadElim(m, s)
	if err := core.Verify(m); err != nil {
		t.Fatal(err)
	}
	if s.Counts["cse.removed"] != 1 {
		t.Errorf("cse.removed = %d, want 1", s.Counts["cse.removed"])
	}
	if s.Counts["loadelim.forwarded"] != 1 {
		t.Errorf("loadelim.forwarded = %d, want 1", s.Counts["loadelim.forwarded"])
	}
}
