package passes

import (
	"llva/internal/analysis"
	"llva/internal/core"
)

// Mem2Reg promotes allocas whose address never escapes and that are only
// loaded and stored directly into SSA virtual registers, inserting phi
// instructions at dominance frontiers (Cytron et al.). Front-ends emit
// locals as allocas (paper, Figure 2); this pass recovers the SSA form
// the V-ISA is built around.
func Mem2Reg(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		return mem2regFunc(f, s)
	})
}

func promotable(in *core.Instruction) bool {
	if in.Op() != core.OpAlloca || in.NumOperands() != 0 {
		return false
	}
	if !in.Allocated.IsFirstClass() {
		return false
	}
	for _, u := range in.Uses() {
		switch u.User.Op() {
		case core.OpLoad:
			// ok
		case core.OpStore:
			if u.Index == 0 {
				return false // the address itself is stored
			}
		default:
			return false
		}
	}
	return true
}

func mem2regFunc(f *core.Function, s *Stats) bool {
	var allocas []*core.Instruction
	for _, bb := range f.Blocks {
		for _, in := range bb.Instructions() {
			if promotable(in) {
				allocas = append(allocas, in)
			}
		}
	}
	if len(allocas) == 0 {
		return false
	}

	cfg := analysis.NewCFG(f)
	dt := analysis.NewDomTreeCFG(cfg)
	df := dt.Frontiers()

	allocaID := make(map[*core.Instruction]int, len(allocas))
	for i, a := range allocas {
		allocaID[a] = i
	}

	// Phi placement at iterated dominance frontiers of each alloca's
	// defining (storing) blocks.
	phiFor := make(map[*core.Instruction]int) // phi -> alloca id
	for ai, a := range allocas {
		work := []int{}
		inWork := make(map[int]bool)
		for _, u := range a.Uses() {
			if u.User.Op() == core.OpStore {
				bi := cfg.Index[u.User.Parent()]
				if !inWork[bi] {
					inWork[bi] = true
					work = append(work, bi)
				}
			}
		}
		hasPhi := make(map[int]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range df[b] {
				if hasPhi[fr] {
					continue
				}
				hasPhi[fr] = true
				phi := core.NewInstruction(core.OpPhi, a.Allocated)
				phi.SetName(a.Name() + ".phi")
				cfg.Blocks[fr].InsertAt(0, phi)
				phiFor[phi] = ai
				if !inWork[fr] {
					inWork[fr] = true
					work = append(work, fr)
				}
			}
		}
	}

	// Renaming walk over the dominator tree.
	stacks := make([][]core.Value, len(allocas))
	var rename func(b int)
	rename = func(b int) {
		bb := cfg.Blocks[b]
		pushed := make([]int, 0, 4)

		for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
			switch in.Op() {
			case core.OpPhi:
				if ai, ok := phiFor[in]; ok {
					stacks[ai] = append(stacks[ai], in)
					pushed = append(pushed, ai)
				}
			case core.OpLoad:
				a, ok := in.Operand(0).(*core.Instruction)
				if !ok {
					continue
				}
				ai, isProm := allocaID[a]
				if !isProm {
					continue
				}
				var v core.Value
				if n := len(stacks[ai]); n > 0 {
					v = stacks[ai][n-1]
				} else {
					v = core.NewUndef(a.Allocated)
				}
				core.ReplaceAllUsesWith(in, v)
				in.EraseFromParent()
				s.Add("mem2reg.loads", 1)
			case core.OpStore:
				a, ok := in.Operand(1).(*core.Instruction)
				if !ok {
					continue
				}
				ai, isProm := allocaID[a]
				if !isProm {
					continue
				}
				stacks[ai] = append(stacks[ai], in.Operand(0))
				pushed = append(pushed, ai)
				in.EraseFromParent()
				s.Add("mem2reg.stores", 1)
			}
		}

		// Fill phi incomings in successors.
		for _, si := range cfg.Succs[b] {
			sb := cfg.Blocks[si]
			for _, phi := range sb.Phis() {
				ai, ok := phiFor[phi]
				if !ok {
					continue
				}
				var v core.Value
				if n := len(stacks[ai]); n > 0 {
					v = stacks[ai][n-1]
				} else {
					v = core.NewUndef(allocas[ai].Allocated)
				}
				phi.AddPhiIncoming(v, bb)
			}
		}

		for _, ch := range dt.Children[b] {
			rename(ch)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			ai := pushed[i]
			stacks[ai] = stacks[ai][:len(stacks[ai])-1]
		}
	}
	rename(0)

	// Unreachable predecessors are never visited by the renaming walk;
	// give their phi edges undef so the phi/predecessor invariant holds.
	for phi, ai := range phiFor {
		bb := phi.Parent()
		for _, p := range bb.Predecessors() {
			if phi.PhiIncomingFor(p) == nil {
				phi.AddPhiIncoming(core.NewUndef(allocas[ai].Allocated), p)
			}
		}
	}

	// Remove the allocas (all loads/stores are gone; unreachable-block
	// uses may remain — clear them).
	for _, a := range allocas {
		for _, u := range a.Uses() {
			// only possible in unreachable blocks
			dead := u.User
			if dead.NumUses() > 0 {
				core.ReplaceAllUsesWith(dead, core.NewUndef(dead.Type()))
			}
			dead.EraseFromParent()
		}
		a.EraseFromParent()
		s.Add("mem2reg.promoted", 1)
	}

	// Phis placed in blocks that turned out to lack the value on some
	// path already default to undef above. Dead phis (never used) are
	// cleaned by DCE/ADCE later.
	return true
}
