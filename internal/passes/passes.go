// Package passes implements the mid-level optimizer that the LLVA
// representation enables (paper, Section 5.1): classical dataflow and
// control-flow optimizations exploiting the explicit CFG and SSA form
// (mem2reg, constant propagation, common subexpression elimination, dead
// code elimination, loop-invariant code motion, CFG simplification) plus
// interprocedural transformations performed at link time (inlining, dead
// global and dead function elimination).
package passes

import (
	"fmt"
	"sort"
	"strings"

	"llva/internal/core"
)

// Stats accumulates named counters across a pipeline run.
type Stats struct {
	Counts map[string]int
}

// NewStats creates an empty counter set.
func NewStats() *Stats { return &Stats{Counts: make(map[string]int)} }

// Add increments a counter.
func (s *Stats) Add(key string, n int) {
	if s == nil {
		return
	}
	s.Counts[key] += n
}

// String renders the counters sorted by name.
func (s *Stats) String() string {
	keys := make([]string, 0, len(s.Counts))
	for k := range s.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %d\n", k, s.Counts[k])
	}
	return b.String()
}

// Pass is a module transformation. Run returns true if it changed the
// module.
type Pass struct {
	Name string
	Run  func(m *core.Module, s *Stats) bool
}

// Pipeline is an ordered list of passes.
type Pipeline struct {
	Passes []Pass
	// Verify re-runs the IR verifier after every pass (used in tests).
	Verify bool
}

// Run executes the pipeline once, returning whether anything changed.
func (p *Pipeline) Run(m *core.Module, s *Stats) (bool, error) {
	changed := false
	for _, pass := range p.Passes {
		if pass.Run(m, s) {
			changed = true
		}
		if p.Verify {
			if err := core.Verify(m); err != nil {
				return changed, fmt.Errorf("after pass %s: %w", pass.Name, err)
			}
		}
	}
	return changed, nil
}

// O1 returns the basic pipeline: SSA construction and local cleanups.
func O1() *Pipeline {
	return &Pipeline{Passes: []Pass{
		{"mem2reg", Mem2Reg},
		{"instcombine", InstCombine},
		{"simplifycfg", SimplifyCFG},
		{"constprop", ConstProp},
		{"dce", DCE},
	}}
}

// O2 returns the full link-time pipeline described in Section 5.1,
// iterated to a (bounded) fixpoint.
func O2() *Pipeline {
	round := []Pass{
		{"mem2reg", Mem2Reg},
		{"instcombine", InstCombine},
		{"simplifycfg", SimplifyCFG},
		{"constprop", ConstProp},
		{"cse", CSE},
		{"loadelim", LoadElim},
		{"licm", LICM},
		{"dce", DCE},
		{"simplifycfg", SimplifyCFG},
	}
	var all []Pass
	all = append(all, Pass{"inline", Inline})
	all = append(all, round...)
	all = append(all, Pass{"inline", Inline})
	all = append(all, round...)
	all = append(all, Pass{"deadglobals", DeadGlobals})
	return &Pipeline{Passes: all}
}

// Optimize runs the O2 pipeline and returns the stats.
func Optimize(m *core.Module) (*Stats, error) {
	s := NewStats()
	_, err := O2().Run(m, s)
	return s, err
}

// ByName returns a single-pass pipeline for the named pass.
func ByName(name string) (Pass, bool) {
	for _, p := range []Pass{
		{"mem2reg", Mem2Reg},
		{"instcombine", InstCombine},
		{"simplifycfg", SimplifyCFG},
		{"constprop", ConstProp},
		{"cse", CSE},
		{"loadelim", LoadElim},
		{"licm", LICM},
		{"dce", DCE},
		{"adce", ADCE},
		{"inline", Inline},
		{"deadglobals", DeadGlobals},
		{"poolalloc", PoolAllocate},
	} {
		if p.Name == name {
			return p, true
		}
	}
	return Pass{}, false
}

// forEachDefined visits every function with a body.
func forEachDefined(m *core.Module, fn func(f *core.Function) bool) bool {
	changed := false
	for _, f := range m.Functions {
		if f.IsDeclaration() {
			continue
		}
		if fn(f) {
			changed = true
		}
	}
	return changed
}

// eraseDeadInstr erases in if it is trivially dead (no uses, no side
// effects). Returns true if erased.
func eraseDeadInstr(in *core.Instruction) bool {
	if !isPure(in) || in.NumUses() != 0 {
		return false
	}
	if !in.HasResult() {
		return false
	}
	in.EraseFromParent()
	return true
}

// isPure reports whether the instruction has no side effects and can be
// deleted when unused or reordered freely. Per the paper's exception
// model, an instruction whose ExceptionsEnabled attribute is false may be
// removed/reordered even if it could fault (Section 3.3) — this is the
// optimization latitude the attribute exists to provide.
func isPure(in *core.Instruction) bool {
	switch in.Op() {
	case core.OpCall, core.OpInvoke, core.OpStore, core.OpRet, core.OpBr,
		core.OpMbr, core.OpUnwind, core.OpAlloca:
		return false
	case core.OpDiv, core.OpRem, core.OpLoad:
		return !in.ExceptionsEnabled
	}
	return true
}
