package passes

import (
	"llva/internal/core"
)

// InstCombine performs peephole algebraic simplifications on SSA:
// identities (x+0, x*1, x&x, x|0, x^x), strength reduction
// (multiply/divide by powers of two into shifts), cast-of-cast collapse,
// and comparison canonicalizations.
func InstCombine(m *core.Module, s *Stats) bool {
	return forEachDefined(m, func(f *core.Function) bool {
		changed := false
		for {
			c := false
			for _, bb := range f.Blocks {
				for _, in := range append([]*core.Instruction(nil), bb.Instructions()...) {
					if v := combine(m, in, s); v != nil {
						core.ReplaceAllUsesWith(in, v)
						in.EraseFromParent()
						c = true
					}
				}
			}
			if !c {
				break
			}
			changed = true
		}
		return changed
	})
}

func isConstInt(v core.Value, val int64) bool {
	c, ok := v.(*core.Constant)
	return ok && c.CK == core.ConstInt && c.Int64() == val
}

func asConst(v core.Value) *core.Constant {
	c, _ := v.(*core.Constant)
	return c
}

// log2 returns k if v == 2^k (k > 0), else -1.
func log2(v int64) int {
	if v <= 1 || v&(v-1) != 0 {
		return -1
	}
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}

// combine returns a replacement value for in, or nil. It may insert new
// instructions before in.
func combine(m *core.Module, in *core.Instruction, s *Stats) core.Value {
	ctx := m.Types()
	op := in.Op()
	t := in.Type()
	if !in.HasResult() {
		return nil
	}
	bin := op.IsBinary() && in.NumOperands() == 2
	var x, y core.Value
	if bin {
		x, y = in.Operand(0), in.Operand(1)
	}

	// Canonicalize constants to the right for commutative integer ops.
	if bin && (op == core.OpAdd || op == core.OpMul || op == core.OpAnd ||
		op == core.OpOr || op == core.OpXor) {
		if asConst(x) != nil && asConst(y) == nil {
			in.SetOperand(0, y)
			in.SetOperand(1, x)
			x, y = in.Operand(0), in.Operand(1)
			s.Add("instcombine.canon", 1)
		}
	}

	switch op {
	case core.OpAdd:
		if t.IsInteger() && isConstInt(y, 0) {
			s.Add("instcombine.addzero", 1)
			return x
		}
	case core.OpSub:
		if t.IsInteger() && isConstInt(y, 0) {
			s.Add("instcombine.subzero", 1)
			return x
		}
		if t.IsInteger() && x == y {
			s.Add("instcombine.subself", 1)
			return core.NewUint(t, 0)
		}
	case core.OpMul:
		if !t.IsInteger() {
			break
		}
		if isConstInt(y, 1) {
			s.Add("instcombine.mulone", 1)
			return x
		}
		if isConstInt(y, 0) {
			s.Add("instcombine.mulzero", 1)
			return core.NewUint(t, 0)
		}
		if c := asConst(y); c != nil {
			if k := log2(c.Int64()); k > 0 {
				sh := core.NewInstruction(core.OpShl, t, x, core.NewUint(ctx.UByte(), uint64(k)))
				in.Parent().InsertBefore(in, sh)
				s.Add("instcombine.mul2shl", 1)
				return sh
			}
		}
	case core.OpDiv:
		if !t.IsInteger() {
			break
		}
		if isConstInt(y, 1) {
			s.Add("instcombine.divone", 1)
			return x
		}
		// Unsigned division by a power of two becomes a logical shift.
		if c := asConst(y); c != nil && !t.IsSigned() {
			if k := log2(c.Int64()); k > 0 {
				sh := core.NewInstruction(core.OpShr, t, x, core.NewUint(ctx.UByte(), uint64(k)))
				in.Parent().InsertBefore(in, sh)
				s.Add("instcombine.div2shr", 1)
				return sh
			}
		}
	case core.OpRem:
		// x rem 2^k (unsigned) -> x & (2^k - 1)
		if c := asConst(y); c != nil && t.IsInteger() && !t.IsSigned() {
			if k := log2(c.Int64()); k > 0 {
				and := core.NewInstruction(core.OpAnd, t, x, core.NewUint(t, uint64(c.Int64()-1)))
				in.Parent().InsertBefore(in, and)
				s.Add("instcombine.rem2and", 1)
				return and
			}
		}
	case core.OpAnd:
		if x == y {
			s.Add("instcombine.andself", 1)
			return x
		}
		if isConstInt(y, 0) {
			s.Add("instcombine.andzero", 1)
			return core.NewUint(t, 0)
		}
	case core.OpOr:
		if x == y {
			s.Add("instcombine.orself", 1)
			return x
		}
		if isConstInt(y, 0) {
			s.Add("instcombine.orzero", 1)
			return x
		}
	case core.OpXor:
		if x == y && t.IsInteger() {
			s.Add("instcombine.xorself", 1)
			return core.NewUint(t, 0)
		}
		if isConstInt(y, 0) {
			s.Add("instcombine.xorzero", 1)
			return x
		}
	case core.OpShl, core.OpShr:
		if isConstInt(in.Operand(1), 0) {
			s.Add("instcombine.shiftzero", 1)
			return in.Operand(0)
		}
	case core.OpCast:
		src := in.Operand(0)
		if src.Type() == t {
			s.Add("instcombine.castnoop", 1)
			return src
		}
		// cast (cast x to B) to C -> cast x to C, when B is at least as
		// wide as both (no information destroyed then recreated).
		if inner, ok := src.(*core.Instruction); ok && inner.Op() == core.OpCast {
			a := inner.Operand(0).Type()
			if a == t && widthOf(inner.Type()) >= widthOf(a) && sameClass(a, inner.Type()) {
				s.Add("instcombine.castcast", 1)
				return inner.Operand(0)
			}
		}
	case core.OpPhi:
		// phi with all-identical incoming values
		if in.NumOperands() >= 1 {
			first := in.Operand(0)
			same := true
			for i := 1; i < in.NumOperands(); i++ {
				if in.Operand(i) != first {
					same = false
					break
				}
			}
			if same && first != in {
				s.Add("instcombine.phisame", 1)
				return first
			}
		}
	case core.OpGetElementPtr:
		// gep p, 0 -> p (same type)
		if in.NumOperands() == 2 && isConstInt(in.Operand(1), 0) &&
			in.Type() == in.Operand(0).Type() {
			s.Add("instcombine.gepzero", 1)
			return in.Operand(0)
		}
		// gep (gep p, ..., i), 0, j... folding is handled by codegen's
		// addressing-mode fusion; keep the IR canonical here.
	}
	return nil
}

func widthOf(t *core.Type) int {
	switch t.Kind() {
	case core.BoolKind:
		return 1
	case core.UByteKind, core.SByteKind:
		return 8
	case core.UShortKind, core.ShortKind:
		return 16
	case core.UIntKind, core.IntKind, core.FloatKind:
		return 32
	default:
		return 64
	}
}

func sameClass(a, b *core.Type) bool {
	return a.IsInteger() && b.IsInteger() || a.IsFloat() && b.IsFloat()
}
