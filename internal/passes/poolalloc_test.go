package passes

import (
	"strings"
	"testing"

	"llva/internal/analysis"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/minic"
)

// twoLists builds two linked lists that never mingle, then walks both.
const twoLists = `
struct Node { long v; struct Node *next; };

struct Node *push(struct Node *head, long v) {
	struct Node *n = (struct Node*)malloc(sizeof(struct Node));
	n->v = v;
	n->next = head;
	return n;
}

long sum(struct Node *p) {
	long s = 0;
	while (p != 0) { s += p->v; p = p->next; }
	return s;
}

int main() {
	struct Node *evens = 0;
	struct Node *odds = 0;
	long i;
	for (i = 0; i < 40; i++) {
		if (i % 2 == 0) evens = push(evens, i);
		else odds = push(odds, i);
	}
	print_int(sum(evens)); print_char(' ');
	print_int(sum(odds)); print_nl();
	/* release one list */
	while (evens != 0) {
		struct Node *n = evens->next;
		free((char*)evens);
		evens = n;
	}
	return 0;
}
`

func TestDSAFindsDisjointLists(t *testing.T) {
	m, err := minic.Compile("lists.c", twoLists)
	if err != nil {
		t.Fatal(err)
	}
	dsa := analysis.NewDSA(m)
	heap := dsa.HeapStructures()
	// Both lists allocate at the SAME malloc site (inside push), so the
	// unification-based analysis sees one heap structure; what matters is
	// that it is identified at all and is distinct from the globals.
	if len(heap) == 0 {
		t.Fatal("DSA found no heap structures")
	}
	for _, n := range heap {
		if len(n.Globals) != 0 {
			t.Error("heap structure merged with a global object")
		}
	}
}

func TestDSADistinguishesSeparateSites(t *testing.T) {
	src := `
struct A { long x; struct A *next; };
struct B { double y; };
int main() {
	struct A *a = (struct A*)malloc(sizeof(struct A));
	struct B *b = (struct B*)malloc(sizeof(struct B));
	a->x = 1; a->next = 0;
	b->y = 2.0;
	print_int(a->x); print_float(b->y); print_nl();
	return 0;
}`
	m, err := minic.Compile("two.c", src)
	if err != nil {
		t.Fatal(err)
	}
	dsa := analysis.NewDSA(m)
	heap := dsa.HeapStructures()
	if len(heap) != 2 {
		t.Errorf("DSA found %d heap structures, want 2 (disjoint A and B instances)", len(heap))
	}
	// The two allocation results must be in different structures.
	var aPtr, bPtr core.Value
	for _, bb := range m.Function("main").Blocks {
		for _, in := range bb.Instructions() {
			if in.Op() == core.OpCall && in.CalledFunction() != nil &&
				in.CalledFunction().Name() == "malloc" {
				if aPtr == nil {
					aPtr = in
				} else {
					bPtr = in
				}
			}
		}
	}
	if aPtr == nil || bPtr == nil {
		t.Fatal("malloc sites not found")
	}
	if dsa.SameStructure(aPtr, bPtr) {
		t.Error("separate structures were merged")
	}
}

func runOn(t *testing.T, m *core.Module) string {
	t.Helper()
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.RunMain(); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return out.String()
}

func TestPoolAllocatePreservesSemantics(t *testing.T) {
	m1, err := minic.Compile("lists.c", twoLists)
	if err != nil {
		t.Fatal(err)
	}
	before := runOn(t, m1)

	m2, err := minic.Compile("lists.c", twoLists)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStats()
	if !PoolAllocate(m2, s) {
		t.Fatal("pool allocation did nothing")
	}
	if err := core.Verify(m2); err != nil {
		t.Fatalf("verify after poolalloc: %v", err)
	}
	if s.Counts["poolalloc.allocs"] == 0 {
		t.Error("no allocation sites rewritten")
	}
	if s.Counts["poolalloc.frees"] == 0 {
		t.Error("no frees rewritten")
	}
	var out strings.Builder
	ip, err := interp.New(m2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != before {
		t.Errorf("pool allocation changed output: %q vs %q", out.String(), before)
	}
	// The pools really received the traffic.
	if ip.Env().Stats.PoolAllocs == nil || len(ip.Env().Stats.PoolAllocs) == 0 {
		t.Error("no pool allocations recorded at run time")
	}
	// malloc must be gone from the module's call sites.
	if f := m2.Function("malloc"); f != nil && f.NumUses() != 0 {
		t.Errorf("malloc still has %d uses after pool allocation", f.NumUses())
	}
}

func TestPoolAllocateOnWorkloadShapedCode(t *testing.T) {
	// vortex-like: hash index of heap records with inserts and deletes.
	src := `
struct Obj { int id; struct Obj *next; };
struct Obj *buckets[32];
void insert(int id) {
	struct Obj *o = (struct Obj*)malloc(sizeof(struct Obj));
	o->id = id;
	o->next = buckets[id % 32];
	buckets[id % 32] = o;
}
int removeOne(int id) {
	struct Obj *o = buckets[id % 32];
	struct Obj *prev = 0;
	while (o != 0) {
		if (o->id == id) {
			if (prev == 0) buckets[id % 32] = o->next;
			else prev->next = o->next;
			free((char*)o);
			return 1;
		}
		prev = o;
		o = o->next;
	}
	return 0;
}
int main() {
	int i, removed = 0;
	for (i = 0; i < 200; i++) insert(i * 7 % 97);
	for (i = 0; i < 97; i++) removed += removeOne(i);
	int live = 0;
	for (i = 0; i < 32; i++) {
		struct Obj *o = buckets[i];
		while (o != 0) { live++; o = o->next; }
	}
	print_int(removed); print_char(' '); print_int(live); print_nl();
	return 0;
}`
	m1, err := minic.Compile("v.c", src)
	if err != nil {
		t.Fatal(err)
	}
	before := runOn(t, m1)
	m2, err := minic.Compile("v.c", src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStats()
	PoolAllocate(m2, s)
	if err := core.Verify(m2); err != nil {
		t.Fatal(err)
	}
	after := runOn(t, m2)
	if before != after {
		t.Errorf("output changed: %q vs %q", after, before)
	}
}
