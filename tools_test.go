package llva

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command-line tools once into a temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, n := range names {
		out := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+n)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", n, err, b)
		}
		bins[n] = out
	}
	return bins
}

func runTool(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() > 0 && ee.ExitCode() < 126 {
			// program exit codes are data, not tool failures
			return out.String(), errb.String()
		}
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, errb.String())
	}
	return out.String(), errb.String()
}

// TestToolPipeline drives the full command-line pipeline exactly as the
// README shows: minicc -> llva-dis -> llva-as -> llva-opt -> llva-llc ->
// llva-run (cold, then warm through the storage-API cache), checking each
// artifact flows into the next.
func TestToolPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t, "minicc", "llva-as", "llva-dis", "llva-opt", "llva-llc", "llva-run")
	work := t.TempDir()

	src := filepath.Join(work, "fib.c")
	if err := os.WriteFile(src, []byte(`
long fib(int n) {
	if (n < 2) return (long)n;
	return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(20)); print_nl(); return 0; }
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// 1. compile
	bc := filepath.Join(work, "fib.bc")
	runTool(t, bins["minicc"], "-O", "-o", bc, src)
	if _, err := os.Stat(bc); err != nil {
		t.Fatalf("minicc produced no object: %v", err)
	}

	// 2. disassemble, reassemble: the pipeline must round-trip
	asmText, _ := runTool(t, bins["llva-dis"], bc)
	if !strings.Contains(asmText, "%fib") || !strings.Contains(asmText, "call") {
		t.Fatalf("disassembly looks wrong:\n%s", asmText)
	}
	llvaFile := filepath.Join(work, "fib.llva")
	if err := os.WriteFile(llvaFile, []byte(asmText), 0o644); err != nil {
		t.Fatal(err)
	}
	bc2 := filepath.Join(work, "fib2.bc")
	runTool(t, bins["llva-as"], "-o", bc2, llvaFile)

	// 3. optimize the reassembled object in place
	runTool(t, bins["llva-opt"], "-O2", "-stats", bc2)

	// 4. offline translation metrics for both targets
	for _, tgt := range []string{"vx86", "vsparc"} {
		stats, _ := runTool(t, bins["llva-llc"], "-target", tgt, bc2)
		if !strings.Contains(stats, "TOTAL") || !strings.Contains(stats, "fib") {
			t.Errorf("llva-llc %s output missing metrics:\n%s", tgt, stats)
		}
	}

	// 5. run: interpreter and both simulated processors agree
	want := "6765\n"
	outI, _ := runTool(t, bins["llva-run"], "-interp", bc2)
	if outI != want {
		t.Errorf("interp output = %q, want %q", outI, want)
	}
	cache := filepath.Join(work, "cache")
	for _, tgt := range []string{"vx86", "vsparc"} {
		out1, err1 := runTool(t, bins["llva-run"], "-target", tgt, "-cache", cache, "-stats", bc2)
		if out1 != want {
			t.Errorf("%s cold output = %q, want %q", tgt, out1, want)
		}
		if !strings.Contains(err1, "cacheHit=false") {
			t.Errorf("%s first run should be a cache miss: %s", tgt, err1)
		}
		out2, err2 := runTool(t, bins["llva-run"], "-target", tgt, "-cache", cache, "-stats", bc2)
		if out2 != want {
			t.Errorf("%s warm output = %q, want %q", tgt, out2, want)
		}
		if !strings.Contains(err2, "cacheHit=true") {
			t.Errorf("%s second run should hit the cache: %s", tgt, err2)
		}
	}

	// 6. idle-time offline translation into a fresh cache, then a pure hit
	cache2 := filepath.Join(work, "cache2")
	runTool(t, bins["llva-run"], "-target", "vsparc", "-cache", cache2, "-translate-only", bc2)
	out3, err3 := runTool(t, bins["llva-run"], "-target", "vsparc", "-cache", cache2, "-stats", bc2)
	if out3 != want || !strings.Contains(err3, "cacheHit=true") {
		t.Errorf("offline-translated run: out=%q stats=%s", out3, err3)
	}
}

// TestTraceSmoke drives the guest observability surface end to end: a
// loop-heavy workload runs under -trace-out and the sampling profiler,
// and the emitted artifacts must be well-formed — the trace a valid
// Chrome trace_event document with at least one complete span, the
// profile attributing the known hot function. A second, trapping
// program must produce the flight recorder's crash report on stderr.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t, "minicc", "llva-run")
	work := t.TempDir()

	src := filepath.Join(work, "spin.c")
	if err := os.WriteFile(src, []byte(`
int spin(int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += i ^ (s >> 2);
	return s;
}
int main() { print_int(spin(20000)); print_nl(); return 0; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	// No -O: the inliner would fold %spin into %main and flatten the
	// stack this test asserts on.
	bc := filepath.Join(work, "spin.bc")
	runTool(t, bins["minicc"], "-o", bc, src)

	traceOut := filepath.Join(work, "trace.json")
	profOut := filepath.Join(work, "spin.folded")
	runTool(t, bins["llva-run"],
		"-trace-out", traceOut, "-prof", "-prof-rate", "256",
		"-prof-out", profOut, "-tenant", "smoke", bc)

	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("no trace written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans, runSpan := 0, false
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spans++
		if e.Name == "run:main" {
			runSpan = true
			if e.Args["tenant"] != "smoke" {
				t.Errorf("run span misses tenant arg: %v", e.Args)
			}
		}
	}
	if spans < 1 || !runSpan {
		t.Fatalf("trace has %d complete spans (run:main=%v), want >=1 with run:main", spans, runSpan)
	}

	folded, err := os.ReadFile(profOut)
	if err != nil {
		t.Fatalf("no profile written: %v", err)
	}
	if !strings.Contains(string(folded), "main;spin ") {
		t.Errorf("folded profile misses main;spin:\n%s", folded)
	}

	// Crash-report smoke: a null deref must render the post-mortem.
	crashSrc := filepath.Join(work, "crash.c")
	if err := os.WriteFile(crashSrc, []byte(`
long poke(long *p) { return *p; }
int main() { return (int)poke((long*)0); }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	crashBC := filepath.Join(work, "crash.bc")
	runTool(t, bins["minicc"], "-o", crashBC, crashSrc)
	_, stderr := runTool(t, bins["llva-run"], crashBC)
	for _, wantS := range []string{
		"virtual machine crash report", "faulting instruction:",
		"virtual backtrace", "%poke", "registers", "disassembly",
	} {
		if !strings.Contains(stderr, wantS) {
			t.Errorf("crash report missing %q:\n%s", wantS, stderr)
		}
	}
}
