// Package llva's top-level benchmark harness regenerates every
// experiment in DESIGN.md's per-experiment index (the paper's Table 2
// columns E1-E5, the qualitative optimization experiment E6, the
// execution-manager experiments E7-E8, and the ablations A1-A3).
//
// The complete Table 2 (all 17 workloads, all 11 columns) is printed by
// cmd/llva-bench; these benchmarks time the underlying operations and
// report the paper's metrics via b.ReportMetric, over a representative
// subset where a full sweep would be slow.
package llva

import (
	"context"
	"fmt"
	"io"

	"llva/internal/asm"
	"strings"
	"sync"
	"testing"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/llee/pipeline"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/obj"
	"llva/internal/passes"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/trace"
	"llva/internal/workloads"
)

// benchSet is the representative subset used by the execution-time
// benchmarks (the full sweep lives in cmd/llva-bench).
var benchSet = []string{"anagram", "ft", "bc", "bzip2", "gzip", "parser", "equake", "gap"}

var (
	moduleCacheMu sync.Mutex
	moduleCache   = map[string]*core.Module{}
)

// compiled returns a cached optimized module for a workload. Benchmarks
// must not mutate it; those that do (codegen is read-only; passes are
// not) compile fresh.
func compiled(b *testing.B, name string) *core.Module {
	b.Helper()
	moduleCacheMu.Lock()
	defer moduleCacheMu.Unlock()
	if m, ok := moduleCache[name]; ok {
		return m
	}
	w := workloads.ByName(name)
	if w == nil {
		b.Fatalf("unknown workload %s", name)
	}
	m, err := w.CompileOptimized()
	if err != nil {
		b.Fatal(err)
	}
	moduleCache[name] = m
	return m
}

func translate(b *testing.B, m *core.Module, d *target.Desc) *codegen.NativeObject {
	b.Helper()
	tr, err := codegen.New(d, m)
	if err != nil {
		b.Fatal(err)
	}
	o, err := tr.TranslateModule()
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkTable2CodeSize (E1): virtual object code vs native code size.
func BenchmarkTable2CodeSize(b *testing.B) {
	for _, name := range benchSet {
		b.Run(name, func(b *testing.B) {
			m := compiled(b, name)
			var encLen, natLen int
			for i := 0; i < b.N; i++ {
				enc, err := obj.Encode(m)
				if err != nil {
					b.Fatal(err)
				}
				encLen = len(enc)
				natLen = translate(b, m, target.VSPARC).CodeSize()
			}
			b.ReportMetric(float64(encLen), "llva-bytes")
			b.ReportMetric(float64(natLen), "native-bytes")
			b.ReportMetric(float64(natLen)/float64(encLen), "native/llva")
		})
	}
}

// BenchmarkTable2X86Expansion (E2) and BenchmarkTable2SparcExpansion (E3):
// LLVA -> native instruction expansion ratios.
func expansion(b *testing.B, d *target.Desc) {
	for _, name := range benchSet {
		b.Run(name, func(b *testing.B) {
			m := compiled(b, name)
			var nLLVA, nNative int
			for i := 0; i < b.N; i++ {
				o := translate(b, m, d)
				nNative = o.NumInstrs()
				nLLVA = 0
				for _, f := range o.Funcs {
					nLLVA += f.NumLLVA
				}
			}
			b.ReportMetric(float64(nLLVA), "llva-instrs")
			b.ReportMetric(float64(nNative), "native-instrs")
			b.ReportMetric(float64(nNative)/float64(nLLVA), "expansion")
		})
	}
}

func BenchmarkTable2X86Expansion(b *testing.B)   { expansion(b, target.VX86) }
func BenchmarkTable2SparcExpansion(b *testing.B) { expansion(b, target.VSPARC) }

// BenchmarkTable2TranslateTime (E4): whole-program JIT compile time (the
// paper's column 10, "total code generation time taken by the X86 JIT to
// compile the entire program").
func BenchmarkTable2TranslateTime(b *testing.B) {
	for _, name := range benchSet {
		b.Run(name, func(b *testing.B) {
			m := compiled(b, name)
			tr, err := codegen.New(target.VX86, m)
			if err != nil {
				b.Fatal(err)
			}
			nLLVA := 0
			for _, f := range m.Functions {
				nLLVA += f.NumInstructions()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.TranslateModule(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nLLVA)/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9),
				"llva-instrs/s")
		})
	}
}

// BenchmarkTable2RunTime (E5): native execution on the simulated
// processor (cycles and instructions reported per run).
func BenchmarkTable2RunTime(b *testing.B) {
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		b.Run(d.Name, func(b *testing.B) {
			for _, name := range benchSet {
				b.Run(name, func(b *testing.B) {
					m := compiled(b, name)
					o := translate(b, m, d)
					var cycles, instrs uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						env := rt.NewEnv(mem.New(0, true), io.Discard)
						mc, err := machine.New(d, m, env)
						if err != nil {
							b.Fatal(err)
						}
						if err := mc.LoadObject(o); err != nil {
							b.Fatal(err)
						}
						if _, err := mc.Run("main"); err != nil {
							if _, isExit := err.(*rt.ExitError); !isExit {
								b.Fatal(err)
							}
						}
						cycles, instrs = mc.Stats.Cycles, mc.Stats.Instrs
					}
					b.ReportMetric(float64(cycles), "cycles")
					b.ReportMetric(float64(instrs), "native-instrs")
					// Retired-instruction throughput of the simulated
					// processor: the block engine's headline number.
					if s := b.Elapsed().Seconds(); s > 0 {
						b.ReportMetric(float64(instrs)*float64(b.N)/s, "instrs/s")
					}
				})
			}
		})
	}
}

// BenchmarkInterpreterRunTime: the reference interpreter baseline for E5.
func BenchmarkInterpreterRunTime(b *testing.B) {
	for _, name := range benchSet {
		b.Run(name, func(b *testing.B) {
			m := compiled(b, name)
			var steps uint64
			for i := 0; i < b.N; i++ {
				ip, err := interp.New(m, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ip.RunMain(); err != nil {
					b.Fatal(err)
				}
				steps = ip.Stats.Instructions
			}
			b.ReportMetric(float64(steps), "llva-instrs")
		})
	}
}

// BenchmarkOptPipeline (E6): the link-time O2 pipeline — time, and how
// much it shrinks the program (Section 5.1's qualitative claim made
// quantitative).
func BenchmarkOptPipeline(b *testing.B) {
	for _, name := range benchSet {
		b.Run(name, func(b *testing.B) {
			w := workloads.ByName(name)
			var before, after int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, err := w.Compile()
				if err != nil {
					b.Fatal(err)
				}
				before = 0
				for _, f := range m.Functions {
					before += f.NumInstructions()
				}
				b.StartTimer()
				if _, err := passes.Optimize(m); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				after = 0
				for _, f := range m.Functions {
					after += f.NumInstructions()
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(before), "instrs-before")
			b.ReportMetric(float64(after), "instrs-after")
			b.ReportMetric(float64(after)/float64(before), "shrink")
		})
	}
}

// BenchmarkLLEEColdVsWarm (E7): startup translation cost with and without
// a valid cached translation (the offline-caching claim of Section 4.1).
func BenchmarkLLEEColdVsWarm(b *testing.B) {
	m := compiled(b, "bc")
	b.Run("cold", func(b *testing.B) {
		var transNS int64
		for i := 0; i < b.N; i++ {
			sys := llee.NewSystem()
			sess, err := sys.NewSession(m, target.VX86, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Run(context.Background(), "main"); err != nil {
				b.Fatal(err)
			}
			if sess.Stats().Translations == 0 {
				b.Fatal("cold run did not translate")
			}
			transNS = sess.Stats().TranslateNS
		}
		b.ReportMetric(float64(transNS), "translate-ns")
	})
	b.Run("warm", func(b *testing.B) {
		st := llee.NewMemStorage()
		seedSys := llee.NewSystem(llee.WithStorage(st))
		seed, err := seedSys.NewSession(m, target.VX86, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if err := seed.TranslateOffline(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys := llee.NewSystem(llee.WithStorage(st))
			sess, err := sys.NewSession(m, target.VX86, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Run(context.Background(), "main"); err != nil {
				b.Fatal(err)
			}
			if !sess.CacheHit() {
				b.Fatal("warm run missed the cache")
			}
		}
		b.ReportMetric(0, "translate-ns")
	})
}

// BenchmarkTraceFormation (E8): profile, form traces, and measure the
// cycle effect of trace-driven relayout (Section 4.2).
func BenchmarkTraceFormation(b *testing.B) {
	w := workloads.ByName("bc")
	b.Run("form", func(b *testing.B) {
		m, err := w.CompileOptimized()
		if err != nil {
			b.Fatal(err)
		}
		var st trace.Stats
		for i := 0; i < b.N; i++ {
			prof := interp.NewProfile()
			ip, err := interp.New(m, io.Discard, interp.WithProfile(prof))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ip.RunMain(); err != nil {
				b.Fatal(err)
			}
			traces := trace.Form(m, prof, trace.Options{})
			st = trace.Summarize(prof, traces)
		}
		b.ReportMetric(float64(st.Traces), "traces")
		b.ReportMetric(st.Coverage*100, "coverage-%")
	})
	b.Run("layout-cycles", func(b *testing.B) {
		var baseCycles, optCycles uint64
		for i := 0; i < b.N; i++ {
			base, err := w.CompileOptimized()
			if err != nil {
				b.Fatal(err)
			}
			baseCycles = runCycles(b, base)
			opt, err := w.CompileOptimized()
			if err != nil {
				b.Fatal(err)
			}
			prof := interp.NewProfile()
			ip, err := interp.New(opt, io.Discard, interp.WithProfile(prof))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ip.RunMain(); err != nil {
				b.Fatal(err)
			}
			trace.ApplyLayout(opt, trace.Form(opt, prof, trace.Options{}))
			optCycles = runCycles(b, opt)
		}
		b.ReportMetric(float64(baseCycles), "cycles-base")
		b.ReportMetric(float64(optCycles), "cycles-traced")
		b.ReportMetric(100*(float64(baseCycles)-float64(optCycles))/float64(baseCycles), "saved-%")
	})
}

func runCycles(b *testing.B, m *core.Module) uint64 {
	b.Helper()
	o := translate(b, m, target.VSPARC)
	env := rt.NewEnv(mem.New(0, true), io.Discard)
	mc, err := machine.New(target.VSPARC, m, env)
	if err != nil {
		b.Fatal(err)
	}
	if err := mc.LoadObject(o); err != nil {
		b.Fatal(err)
	}
	if _, err := mc.Run("main"); err != nil {
		b.Fatal(err)
	}
	return mc.Stats.Cycles
}

// BenchmarkAblationExceptions (A1): how much optimization latitude the
// ExceptionsEnabled attribute grants — DCE over a module with the paper's
// defaults vs. the same module with every instruction's exceptions
// enabled (the conservative "always precise" world of conventional ISAs).
func BenchmarkAblationExceptions(b *testing.B) {
	const n = 400
	build := func(allEnabled bool) *core.Module {
		m := core.NewModule("ablate")
		ctx := m.Types()
		long := ctx.Long()
		f := m.NewFunction("f", ctx.Function(long, []*core.Type{long, long}, false))
		bb := f.NewBlock("entry")
		bld := core.NewBuilder(f)
		bld.SetBlock(bb)
		x, y := f.Params[0], f.Params[1]
		var last core.Value = x
		for i := 0; i < n; i++ {
			// dead divisions: results never used
			d := bld.Div(x, y, "")
			if allEnabled {
				d.ExceptionsEnabled = true
			} else {
				d.ExceptionsEnabled = false // paper default is true for div; the
				// front-end knows these cannot trap and clears the bit
			}
			_ = d
			last = bld.Add(last, x, "")
		}
		bld.Ret(last)
		return m
	}
	for _, mode := range []string{"attr-off", "attr-on"} {
		b.Run(mode, func(b *testing.B) {
			var removed int
			for i := 0; i < b.N; i++ {
				m := build(mode == "attr-on")
				s := passes.NewStats()
				passes.DCE(m, s)
				removed = s.Counts["dce.removed"]
			}
			b.ReportMetric(float64(removed), "dead-divs-removed")
		})
	}
}

// BenchmarkAblationSMC (A2): cost of an llva.smc.replace invalidation +
// retranslation cycle on the simulated processor.
func BenchmarkAblationSMC(b *testing.B) {
	src := `
declare void %llva.smc.replace(sbyte* %t, sbyte* %s)
int %v1(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}
int %v2(int %x) {
entry:
    %r = add int %x, 2
    ret int %r
}
int %main() {
entry:
    %t = cast int (int)* %v1 to sbyte*
    %s = cast int (int)* %v2 to sbyte*
    call void %llva.smc.replace(sbyte* %t, sbyte* %s)
    %r = call int %v1(int 1)
    ret int %r
}
`
	m := mustParse(b, src)
	for i := 0; i < b.N; i++ {
		sys := llee.NewSystem()
		sess, err := sys.NewSession(m, target.VX86, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sess.Run(context.Background(), "main")
		if err != nil {
			b.Fatal(err)
		}
		if int32(res.Value) != 3 {
			b.Fatalf("SMC result %d, want 3", int32(res.Value))
		}
	}
}

// BenchmarkAblationPipelines (A3): expansion ratio of naive front-end
// output vs. O2-optimized code — quantifying how much optimization the
// rich representation moves OUT of the translator (Section 4.2's "minimize
// optimization that must be performed online").
func BenchmarkAblationPipelines(b *testing.B) {
	for _, mode := range []string{"O0", "O2"} {
		b.Run(mode, func(b *testing.B) {
			w := workloads.ByName("bc")
			var nLLVA, nNative int
			for i := 0; i < b.N; i++ {
				var m *core.Module
				var err error
				if mode == "O2" {
					m, err = w.CompileOptimized()
				} else {
					m, err = w.Compile()
				}
				if err != nil {
					b.Fatal(err)
				}
				o := translate(b, m, target.VX86)
				nNative = o.NumInstrs()
				nLLVA = 0
				for _, f := range o.Funcs {
					nLLVA += f.NumLLVA
				}
			}
			b.ReportMetric(float64(nLLVA), "llva-instrs")
			b.ReportMetric(float64(nNative), "native-instrs")
		})
	}
}

// BenchmarkPoolAllocation (E9): DSA + automatic pool allocation on the
// pointer-heavy ft workload — transformation cost, pools identified, and
// run-time pool traffic.
func BenchmarkPoolAllocation(b *testing.B) {
	w := workloads.ByName("ft")
	var pools, rewritten int
	for i := 0; i < b.N; i++ {
		m, err := w.CompileOptimized()
		if err != nil {
			b.Fatal(err)
		}
		s := passes.NewStats()
		passes.PoolAllocate(m, s)
		pools = s.Counts["poolalloc.pools"]
		rewritten = s.Counts["poolalloc.allocs"]
		if err := core.Verify(m); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// One execution to confirm pool traffic flows.
			ip, err := interp.New(m, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ip.RunMain(); err != nil {
				b.Fatal(err)
			}
			if len(ip.Env().Stats.PoolAllocs) == 0 {
				b.Fatal("no pool allocations at run time")
			}
		}
	}
	b.ReportMetric(float64(pools), "pools")
	b.ReportMetric(float64(rewritten), "sites-rewritten")
}

// BenchmarkParallelTranslate (P1): whole-module translation on the
// worker-pool pipeline at increasing widths, against the serial
// baseline (workers=1). The output is byte-identical at every width;
// only the wall clock changes.
func BenchmarkParallelTranslate(b *testing.B) {
	for _, name := range []string{"bc", "gzip", "gap"} {
		b.Run(name, func(b *testing.B) {
			m := compiled(b, name)
			tr, err := codegen.New(target.VX86, m)
			if err != nil {
				b.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := pipeline.TranslateModule(tr, workers, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkSpeculativeColdStart (P2): a cold LLEE run with background
// speculative JIT of static callees vs the strictly-on-demand baseline.
// demand-stall-ns is the translation time the program actually waited
// for on the demand path (near zero when speculation ran ahead).
func BenchmarkSpeculativeColdStart(b *testing.B) {
	m := compiled(b, "bc")
	for _, mode := range []struct {
		name string
		on   bool
	}{{"speculate", true}, {"on-demand", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var stall int64
			for i := 0; i < b.N; i++ {
				sys := llee.NewSystem(llee.WithSpeculation(mode.on), llee.WithTranslateWorkers(4))
				sess, err := sys.NewSession(m, target.VX86, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Run(context.Background(), "main"); err != nil {
					b.Fatal(err)
				}
				if sess.Stats().Translations == 0 {
					b.Fatal("cold run did not translate")
				}
				stall = sess.Stats().TranslateNS
				if err := sys.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stall), "demand-stall-ns")
		})
	}
}

// BenchmarkObjEncodeDecode: the virtual-object-code round trip itself.
func BenchmarkObjEncodeDecode(b *testing.B) {
	m := compiled(b, "gap")
	enc, err := obj.Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := obj.Encode(m); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(enc)))
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := obj.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(enc)))
	})
}

func mustParse(b *testing.B, src string) *core.Module {
	b.Helper()
	m, err := asm.Parse("bench", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		b.Fatal(err)
	}
	return m
}

var _ = strings.TrimSpace
