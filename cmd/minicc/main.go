// minicc compiles MiniC source (the C subset front-end) to LLVA virtual
// object code or assembly.
//
// Usage: minicc [-o out.bc] [-S] [-O] input.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/minic"
	"llva/internal/obj"
	"llva/internal/passes"
)

func main() {
	out := flag.String("o", "", "output file")
	emitAsm := flag.Bool("S", false, "emit LLVA assembly instead of object code")
	optimize := flag.Bool("O", false, "run the O2 optimization pipeline")
	stats := flag.Bool("stats", false, "print optimization statistics to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-o out.bc] [-S] [-O] input.c")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	m, err := minic.Compile(strings.TrimSuffix(in, ".c"), string(src))
	if err != nil {
		fatal(err)
	}
	if err := core.Verify(m); err != nil {
		fatal(fmt.Errorf("internal error: generated IR fails verification: %w", err))
	}
	if *optimize {
		s, err := passes.Optimize(m)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprint(os.Stderr, s)
		}
	}
	dst := *out
	if *emitAsm {
		text := asm.Print(m)
		if dst == "" || dst == "-" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(dst, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	data, err := obj.Encode(m)
	if err != nil {
		fatal(err)
	}
	if dst == "" {
		dst = strings.TrimSuffix(in, ".c") + ".bc"
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
