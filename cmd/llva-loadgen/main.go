// llva-loadgen drives a running llva-serve with many concurrent
// sessions and reports throughput and latency percentiles.
//
// Usage:
//
//	llva-loadgen -addr URL [-src FILE] [-module NAME] [-sessions N]
//	             [-total N | -duration D] [-gas N] [-tenant T] [-json FILE]
//
// It uploads the program source via /api/v1/load (unless -module names
// one already loaded), then opens -sessions concurrent clients issuing
// synchronous runs until -total runs complete or -duration elapses.
// The report (completed, shed, out-of-gas, 5xx, p50/p99 latency,
// sessions/sec) prints to stdout and, with -json, lands in a bench
// JSON archive.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"llva/internal/serve"
)

// defaultProg is a small self-checking workload: enough arithmetic to
// exercise the translator, quick enough to push session throughput.
const defaultProg = `
int work(int n) {
	int i, acc = 0;
	for (i = 0; i < n; i++) acc += i * i;
	return acc;
}
int main() {
	print_int(work(100)); print_nl();
	return 0;
}
`

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-loadgen:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the llva-serve instance")
	src := flag.String("src", "", "C-subset source file to upload and drive (default: built-in workload)")
	module := flag.String("module", "loadgen", "module name to register the source under")
	entry := flag.String("entry", "main", "entry symbol")
	sessions := flag.Int("sessions", 10000, "concurrent client sessions")
	total := flag.Int("total", 0, "total runs to attempt (0: run for -duration)")
	duration := flag.Duration("duration", 0, "stop after this long (0: run until -total)")
	gas := flag.Uint64("gas", 0, "per-run gas budget forwarded to the server (0: server default)")
	tenant := flag.String("tenant", "", "tenant label on every request")
	jsonOut := flag.String("json", "", "append the report as a JSON document to FILE")
	compare := flag.String("compare", "", "baseline bench JSON: fail when sessions/sec regresses below -compare-ratio of it")
	ratio := flag.Float64("compare-ratio", 0.75, "minimum sessions/sec as a fraction of the -compare baseline")
	flag.Parse()
	if *total == 0 && *duration == 0 {
		*total = 10 * *sessions
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	source := defaultProg
	if *src != "" {
		data, err := os.ReadFile(*src)
		if err != nil {
			fatal(err)
		}
		source = string(data)
	}
	client := serve.NewClient(*addr)
	if _, err := client.Load(ctx, serve.LoadRequest{Name: *module, Source: source}); err != nil {
		fatal(fmt.Errorf("load: %w", err))
	}

	fmt.Fprintf(os.Stderr, "llva-loadgen: %d sessions against %s ...\n", *sessions, *addr)
	rep, err := serve.RunLoadGen(ctx, serve.LoadGenConfig{
		Base:     *addr,
		Module:   *module,
		Entry:    *entry,
		Sessions: *sessions,
		Total:    *total,
		Duration: *duration,
		Gas:      *gas,
		Tenant:   *tenant,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("sessions            %d\n", rep.Sessions)
	fmt.Printf("attempted           %d\n", rep.Attempted)
	fmt.Printf("completed           %d\n", rep.Completed)
	fmt.Printf("out-of-gas          %d\n", rep.OutOfGas)
	fmt.Printf("shed                %d\n", rep.Shed)
	fmt.Printf("rate-limited        %d\n", rep.RateLimited)
	fmt.Printf("canceled            %d\n", rep.Canceled)
	fmt.Printf("errors (5xx/other)  %d/%d\n", rep.Errors5xx, rep.OtherErrors)
	fmt.Printf("wall                %.2fs\n", rep.WallSeconds)
	fmt.Printf("sessions/sec        %.0f\n", rep.SessionsPerSec)
	fmt.Printf("latency p50/p99/max %v / %v / %v\n",
		time.Duration(rep.P50LatencyNS), time.Duration(rep.P99LatencyNS), time.Duration(rep.MaxLatencyNS))
	fmt.Printf("queue   p50/p99     %v / %v\n",
		time.Duration(rep.QueueP50NS), time.Duration(rep.QueueP99NS))
	fmt.Printf("exec    p50/p99     %v / %v\n",
		time.Duration(rep.ExecP50NS), time.Duration(rep.ExecP99NS))
	fmt.Printf("pool reuse/cold     %d/%d\n", rep.SessionReuse, rep.SessionCold)

	if *jsonOut != "" {
		doc := struct {
			Date   string              `json:"date"`
			Kind   string              `json:"kind"`
			Addr   string              `json:"addr"`
			Module string              `json:"module"`
			Gas    uint64              `json:"gas"`
			Report serve.LoadGenReport `json:"report"`
		}{
			Date:   time.Now().UTC().Format(time.RFC3339),
			Kind:   "llva-loadgen",
			Addr:   *addr,
			Module: *module,
			Gas:    *gas,
			Report: rep,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "llva-loadgen: report written to %s\n", *jsonOut)
	}

	if rep.Errors5xx > 0 {
		os.Exit(1)
	}
	if *compare != "" {
		if err := compareBaseline(*compare, *ratio, rep.SessionsPerSec); err != nil {
			fmt.Fprintln(os.Stderr, "llva-loadgen: FAIL:", err)
			os.Exit(2)
		}
	}
}

// compareBaseline is the serve throughput gate: it reads an archived
// loadgen JSON document and fails loudly when this run's sessions/sec
// fell below ratio × the baseline's.
func compareBaseline(path string, ratio, got float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Report serve.LoadGenReport `json:"report"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := doc.Report.SessionsPerSec
	if base <= 0 {
		return fmt.Errorf("%s: baseline has no sessions_per_sec", path)
	}
	floor := base * ratio
	if got < floor {
		return fmt.Errorf("sessions/sec regression: %.0f < %.0f (%.0f%% of baseline %.0f from %s)",
			got, floor, ratio*100, base, path)
	}
	fmt.Printf("compare             OK: %.0f sessions/sec >= %.0f (%.0f%% of %.0f, %s)\n",
		got, floor, ratio*100, base, path)
	return nil
}
