// llva-serve is the multi-tenant LLVA execution daemon: it loads
// modules and runs them as llee Sessions against one shared System,
// with per-run gas budgets, per-tenant rate limits and aggregate gas
// budgets, and load shedding when the worker pool saturates.
//
// Usage:
//
//	llva-serve [-addr HOST:PORT] [-target T] [-cache DIR] [-workers N]
//	           [-queue N] [-pool N] [-mem BYTES] [-gas-default N] [-gas-max N]
//	           [-tenant-rate R] [-tenant-burst N] [-tenant-gas N]
//	           [-drain-timeout D]
//
// The service API lives under /api/v1 (load, run, submit, status,
// cancel); the same mux carries the llva-run observability surface:
// /metrics, /metrics/events, /debug/llva/trace, /debug/vars and
// /debug/pprof. SIGINT/SIGTERM drains gracefully: admission returns
// 503 draining, in-flight runs finish (up to -drain-timeout), then the
// cache is flushed and the process exits.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"llva/internal/llee"
	"llva/internal/prof"
	"llva/internal/serve"
	"llva/internal/target"
	"llva/internal/telemetry"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-serve:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for the service API and metrics")
	tgt := flag.String("target", "vsparc", "target I-ISA: vx86 or vsparc")
	cacheDir := flag.String("cache", "", "offline translation cache directory (storage API)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this many unique bytes (0: unlimited; needs -cache)")
	workers := flag.Int("workers", 0, "concurrent executing sessions (0: one per CPU)")
	queue := flag.Int("queue", 0, "admitted-but-not-started capacity before shedding (0: 4x workers)")
	pool := flag.Int("pool", 0, "pooled reusable sessions kept per module (0: one per worker, negative: disable pooling)")
	memSize := flag.Uint64("mem", 8<<20, "per-session simulated address space in bytes")
	gasDefault := flag.Uint64("gas-default", 0, "gas budget for requests that omit one (0: unmetered)")
	gasMax := flag.Uint64("gas-max", 0, "hard cap on per-run gas budgets (0: uncapped)")
	tenantRate := flag.Float64("tenant-rate", 0, "admitted requests/sec per tenant (0: unlimited)")
	tenantBurst := flag.Int("tenant-burst", 8, "per-tenant token-bucket burst")
	tenantGas := flag.Uint64("tenant-gas", 0, "aggregate simulated-cycle budget per tenant (0: unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain waits for in-flight runs")
	translateWorkers := flag.Int("translate-workers", 0, "translation worker-pool size (0: one per CPU)")
	speculate := flag.Bool("speculate", true, "speculatively JIT-translate static callees on background workers")
	tier2 := flag.Bool("tier2", false, "profile-guided tier-2 translation when stored guest profiles exist (needs -cache)")
	flag.Parse()

	var d *target.Desc
	switch *tgt {
	case "vx86":
		d = target.VX86
	case "vsparc":
		d = target.VSPARC
	default:
		fatal(fmt.Errorf("unknown target %q", *tgt))
	}

	reg := telemetry.New()
	reg.Publish("llva")
	tracer := prof.NewTracer()
	sysOpts := []llee.SystemOption{
		llee.WithTelemetry(reg),
		llee.WithTranslateWorkers(*translateWorkers),
		llee.WithSpeculation(*speculate),
		llee.WithTracer(tracer),
		llee.WithTier2(*tier2),
	}
	if *cacheDir != "" {
		st, err := llee.NewDirStorage(*cacheDir)
		if err != nil {
			fatal(err)
		}
		st.SetMaxBytes(*cacheMax)
		st.SetTelemetry(reg)
		sysOpts = append(sysOpts, llee.WithStorage(st))
	} else if *cacheMax != 0 {
		fatal(fmt.Errorf("-cache-max-bytes requires -cache"))
	}
	sys := llee.NewSystem(sysOpts...)

	srv, err := serve.New(serve.Config{
		System:       sys,
		Target:       d,
		Workers:      *workers,
		Queue:        *queue,
		PoolSessions: *pool,
		MemSize:      *memSize,
		DefaultGas:   *gasDefault,
		MaxGas:       *gasMax,
		TenantRate:   *tenantRate,
		TenantBurst:  *tenantBurst,
		TenantGas:    *tenantGas,
	})
	if err != nil {
		fatal(err)
	}

	// One mux serves both the execution API and the observability
	// surface llva-run exposes under -metrics-addr.
	mux := http.NewServeMux()
	srv.Register(mux)
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics/events", reg.EventsHandler())
	mux.Handle("/debug/llva/trace", tracer.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "llva-serve: %s target on http://%s/api/v1 (metrics at /metrics)\n",
		d.Name, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "llva-serve: %v: draining (timeout %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "llva-serve: drain:", err)
	}
	_ = hs.Shutdown(ctx)
	// Close flushes pending cache write-back after the last run.
	if err := sys.Close(); err != nil {
		fatal(err)
	}
}
