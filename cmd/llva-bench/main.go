// llva-bench regenerates the paper's Table 2 ("Metrics demonstrating code
// size and low-level nature of the V-ISA") over the workload suite:
//
//	program, LOC, native size, LLVA size, #LLVA instructions,
//	#vx86 instructions + ratio, #vsparc instructions + ratio,
//	JIT translate time, run time, translate/run ratio.
//
// Like the paper, native code size is measured on the SPARC-flavoured
// target, the translate time is the whole-program JIT compile time for
// the x86-flavoured target, and the run time is the program's execution
// (here: on the simulated vx86 processor; both virtual seconds at 1 GHz
// and host wall clock are reported, the ratio uses wall clock for both
// sides).
//
// With -json the same rows are emitted machine-readable, extended with
// a telemetry block sourced from the execution manager's metric
// registry over a cold (JIT + cache write-back) and warm (cache hit)
// run pair: translate nanoseconds, cache hits/misses, and instructions
// retired on the simulated processor.
//
// Usage: llva-bench [-workload NAME] [-O0] [-md] [-json] [-tier2]
//
//	[-translate-workers N] [-compare BASELINE.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"llva/internal/codegen"
	"llva/internal/core"
	"llva/internal/image"
	"llva/internal/llee"
	"llva/internal/llee/pipeline"
	"llva/internal/machine"
	"llva/internal/mem"
	"llva/internal/obj"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
	"llva/internal/workloads"
)

// profRate is the sampling profiler's period (one sample per N simulated
// branch events) for every profile-gathering run in the bench. Finer than
// llva-run's default: block-granular heat drives tier-2 superblock layout
// and spill-weight eviction, and at coarser rates small hot loops in the
// mid-size workloads fall below the noise floor.
const profRate = 25

// Row is one Table 2 line.
type Row struct {
	Name      string  `json:"name"`
	PaperName string  `json:"paper_name"`
	LOC       int     `json:"loc"`
	NativeKB  float64 `json:"native_kb"` // vsparc native code size
	// DataKB is the built static data segment, reported separately so
	// data-dominated modules are visible: the .bc size (LLVAKB) embeds
	// initialized global data while NativeKB counts code only, which
	// distorts the size ratio for programs like anagram whose dictionary
	// rivals their code. (The segment can't simply be added to the native
	// side: it materializes zero-initialized arrays the .bc encodes in a
	// few bytes.)
	DataKB      float64 `json:"data_kb"`
	LLVAKB      float64 `json:"llva_kb"`
	NumLLVA     int     `json:"llva_instrs"`
	NumX86      int     `json:"vx86_instrs"`
	RatioX86    float64 `json:"vx86_ratio"`
	NumSparc    int     `json:"vsparc_instrs"`
	RatioSparc  float64 `json:"vsparc_ratio"`
	TranslateS  float64 `json:"translate_s"`   // vx86 whole-program JIT, host seconds
	RunVirtualS float64 `json:"run_virtual_s"` // vx86 cycles at 1 GHz
	RunWallS    float64 `json:"run_wall_s"`    // host wall clock of the simulated run
	Ratio       float64 `json:"translate_run_ratio"`
	// Engine-throughput columns (nondeterministic; excluded from
	// -compare): simulated instructions retired per host second in
	// millions, and host heap allocations charged to the run — the
	// steady-state block engine should allocate close to nothing.
	MIPS        float64 `json:"mips"`
	AllocsPerOp uint64  `json:"allocs_per_op"`

	Telemetry *TelemetryRow `json:"telemetry,omitempty"`
}

// TelemetryRow carries the registry-sourced metrics of a cold+warm
// manager run pair on vx86, including the speculative-JIT pipeline's
// hit/waste/queue metrics for the cold run.
type TelemetryRow struct {
	TranslateNS   int64  `json:"translate_ns"`
	Translations  uint64 `json:"translations"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	InstrsRetired uint64 `json:"instrs_retired"`
	Cycles        uint64 `json:"cycles"`
	Branches      uint64 `json:"branches"`

	// Block-engine counters: predecoded blocks built, chained (map-free)
	// block transitions, and blocks evicted by SMC invalidation.
	BlockBuilds      uint64 `json:"block_builds"`
	BlockChains      uint64 `json:"block_chains"`
	BlockInvalidates uint64 `json:"block_invalidate"`

	SpecEnqueued   uint64 `json:"spec_enqueued"`
	SpecTranslated uint64 `json:"spec_translated"`
	SpecHits       uint64 `json:"spec_hits"`
	SpecJoins      uint64 `json:"spec_joins"`
	SpecWaste      uint64 `json:"spec_waste"`
	SpecQueuePeak  int64  `json:"spec_queue_peak"`

	// Register-allocator counters: spill stores / reloads emitted and
	// total allocation time across the cold run's translations.
	Spills     uint64 `json:"codegen_spills"`
	Reloads    uint64 `json:"codegen_reloads"`
	RegallocNS int64  `json:"codegen_regalloc_ns"`

	// Tier-2 counters (all zero without -tier2): functions re-translated
	// at tier 2, superblocks formed, instructions added by tail
	// duplication, and tier-up installations that replaced already-running
	// tier-1 code.
	Tier2Funcs       uint64 `json:"tier2_funcs"`
	Superblocks      uint64 `json:"superblocks"`
	TailDupInstrs    uint64 `json:"tail_dup_instrs"`
	CodeReplacements uint64 `json:"code_replacements"`
}

// measureTelemetry runs the workload through a sequence of llee.Systems
// sharing one in-memory storage API and one registry — modelling a cold
// process (speculative JIT, cache write-back at Close) followed by a
// warm one (stamp-validated cache hit) — and reads the results out of
// the shared telemetry registry. With tier2, the cold process also
// samples the guest and persists its profile, and an extra middle
// process models a profile-warm but code-cold start: its hot functions
// tier up in the background and hot-swap over the running tier-1 code,
// after which the final warm process decodes both cache tiers.
func measureTelemetry(m *core.Module, workers int, tier2 bool) (*TelemetryRow, error) {
	reg := telemetry.New()
	st := llee.NewMemStorage()
	runOne := func(opts []llee.SystemOption, sessOpts []llee.SessionOption, runs int) error {
		sys := llee.NewSystem(append([]llee.SystemOption{
			llee.WithStorage(st), llee.WithTelemetry(reg),
			llee.WithTranslateWorkers(workers)}, opts...)...)
		sess, err := sys.NewSession(m, target.VX86, io.Discard, sessOpts...)
		if err != nil {
			return err
		}
		for i := 0; i < runs; i++ {
			if _, err := sess.Run(context.Background(), "main"); err != nil && !errors.Is(err, llee.ErrExit) {
				sys.Close()
				return err
			}
			if tier2 && i == 0 && runs > 1 {
				// Give background tier-up a chance to finish before the
				// second run, whose pre-run drain installs the results.
				waitCounterStable(reg, pipeline.MetricTierUps)
			}
		}
		if tier2 && sess.Profiler() != nil {
			if err := sess.StoreGuestProfile(); err != nil {
				sys.Close()
				return err
			}
		}
		return sys.Close()
	}
	if !tier2 {
		for i := 0; i < 2; i++ {
			if err := runOne(nil, nil, 1); err != nil {
				return nil, err
			}
		}
	} else {
		// Cold: tier-1 JIT under the sampling profiler; the profile is
		// persisted, the translations are written back.
		if err := runOne(nil, []llee.SessionOption{llee.WithProfiler(prof.NewProfiler(profRate))}, 1); err != nil {
			return nil, err
		}
		// Profile-warm, code-cold: the native cache is gone (evicted) but
		// the profile survives, so the process JITs at tier 1 and the hot
		// functions tier up in the background and hot-swap mid-flight.
		if err := st.Delete("native:" + m.Name + ":" + target.VX86.Name); err != nil {
			return nil, err
		}
		if err := runOne([]llee.SystemOption{llee.WithTier2(true)}, nil, 2); err != nil {
			return nil, err
		}
		// Fully warm: both the tier-1 and the profile-stamped tier-2 cache
		// decode from storage; nothing is translated.
		if err := runOne([]llee.SystemOption{llee.WithTier2(true)}, nil, 1); err != nil {
			return nil, err
		}
	}
	snap := reg.Snapshot()
	return &TelemetryRow{
		TranslateNS:   reg.Histogram(llee.MetricTranslateNS).Sum(),
		Translations:  reg.CounterValue(llee.MetricTranslations),
		CacheHits:     reg.CounterValue(llee.MetricCacheHits),
		CacheMisses:   reg.CounterValue(llee.MetricCacheMisses),
		InstrsRetired: reg.CounterValue("machine.instrs"),
		Cycles:        reg.CounterValue("machine.cycles"),
		Branches:      reg.CounterValue("machine.branches"),

		BlockBuilds:      reg.CounterValue("machine.block_builds"),
		BlockChains:      reg.CounterValue("machine.block_chains"),
		BlockInvalidates: reg.CounterValue("machine.block_invalidate"),

		SpecEnqueued:   reg.CounterValue(pipeline.MetricSpecEnqueued),
		SpecTranslated: reg.CounterValue(pipeline.MetricSpecTranslated),
		SpecHits:       reg.CounterValue(pipeline.MetricSpecHits),
		SpecJoins:      reg.CounterValue(pipeline.MetricSpecJoins),
		SpecWaste:      reg.CounterValue(pipeline.MetricSpecWaste),
		SpecQueuePeak:  snap.Gauges[pipeline.MetricSpecQueuePeak],

		Spills:     reg.CounterValue(codegen.MetricSpills),
		Reloads:    reg.CounterValue(codegen.MetricReloads),
		RegallocNS: reg.Histogram(codegen.MetricRegallocNS).Sum(),

		Tier2Funcs:       reg.CounterValue(codegen.MetricTier2Funcs),
		Superblocks:      reg.CounterValue(codegen.MetricSuperblocks),
		TailDupInstrs:    reg.CounterValue(codegen.MetricTailDupInstrs),
		CodeReplacements: reg.CounterValue("machine.code_replacements"),
	}, nil
}

// waitCounterStable polls a counter until it stops moving (three
// consecutive reads 20ms apart) or a 3s deadline passes — enough for
// the background tier-up workers to drain on every workload size
// without coupling the bench to pipeline internals.
func waitCounterStable(reg *telemetry.Registry, name string) {
	deadline := time.Now().Add(3 * time.Second)
	last, same := reg.CounterValue(name), 0
	for same < 3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if v := reg.CounterValue(name); v == last {
			same++
		} else {
			last, same = v, 0
		}
	}
}

// Measure computes one row; whole-module translations run on the
// pipeline worker pool (workers=1 reproduces the serial timings). With
// tier2, the vx86 run-time columns (#vx86, cycles, run time) reflect
// profile-guided tier-2 code: the tier-1 run's deterministic sampling
// profile guides a whole-module re-translation, and the tier-2 run must
// produce byte-identical program output or the measurement fails.
func Measure(w *workloads.Workload, optimize bool, workers int, tier2 bool) (*Row, error) {
	var m *core.Module
	var err error
	if optimize {
		m, err = w.CompileOptimized()
	} else {
		m, err = w.Compile()
	}
	if err != nil {
		return nil, err
	}
	row := &Row{Name: w.Name, PaperName: w.PaperName, LOC: w.LOC()}

	// Virtual object code size (paper column 4) and the static data
	// segment, reported separately so code compares with code (E1).
	enc, err := obj.Encode(m)
	if err != nil {
		return nil, err
	}
	row.LLVAKB = float64(len(enc)) / 1024
	img, err := image.Build(m, mem.NullGuard)
	if err != nil {
		return nil, err
	}
	row.DataKB = float64(len(img.Bytes)) / 1024

	for _, f := range m.Functions {
		row.NumLLVA += f.NumInstructions()
	}

	// vsparc: native size (paper column 3) and expansion (columns 8-9).
	trS, err := codegen.New(target.VSPARC, m)
	if err != nil {
		return nil, err
	}
	objS, err := pipeline.TranslateModule(trS, workers, nil)
	if err != nil {
		return nil, err
	}
	row.NativeKB = float64(objS.CodeSize()) / 1024
	row.NumSparc = objS.NumInstrs()
	row.RatioSparc = float64(row.NumSparc) / float64(row.NumLLVA)

	// vx86: expansion (columns 5-7) and JIT translate time (column 10),
	// compiling the entire program like the paper's JIT measurement.
	trX, err := codegen.New(target.VX86, m)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	objX, err := pipeline.TranslateModule(trX, workers, nil)
	if err != nil {
		return nil, err
	}
	row.TranslateS = time.Since(start).Seconds()

	var tier1Out bytes.Buffer
	if tier2 {
		// Profile run on the tier-1 code: deterministic sampling, so the
		// guiding artifact — and with it the tier-2 code — is reproducible.
		p := prof.NewProfiler(profRate)
		if _, _, err := runObject(m, objX, &tier1Out, p); err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		tr2 := trX.WithTier2(p.Artifact(m.Name, target.VX86.Name))
		objX, err = pipeline.TranslateModule(tr2, workers, nil)
		if err != nil {
			return nil, err
		}
	}
	row.NumX86 = objX.NumInstrs()
	row.RatioX86 = float64(row.NumX86) / float64(row.NumLLVA)

	// Run time (column 11) on the simulated vx86 processor. With -tier2
	// this is the profile-warm tier-2 run; its output must match the
	// tier-1 profile run byte for byte.
	var outSink io.Writer = io.Discard
	var tier2Out bytes.Buffer
	if tier2 {
		outSink = &tier2Out
	}
	env := rt.NewEnv(mem.New(0, true), outSink)
	mc, err := machine.New(target.VX86, m, env)
	if err != nil {
		return nil, err
	}
	if err := mc.LoadObject(objX); err != nil {
		return nil, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wall := time.Now()
	if _, err := mc.Run("main"); err != nil {
		if _, isExit := err.(*rt.ExitError); !isExit {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
	}
	row.RunWallS = time.Since(wall).Seconds()
	if tier2 && !bytes.Equal(tier1Out.Bytes(), tier2Out.Bytes()) {
		return nil, fmt.Errorf("%s: tier-2 output differs from tier-1 (%d vs %d bytes)",
			w.Name, tier2Out.Len(), tier1Out.Len())
	}
	runtime.ReadMemStats(&ms1)
	row.AllocsPerOp = ms1.Mallocs - ms0.Mallocs
	row.RunVirtualS = float64(mc.Stats.Cycles) / 1e9
	if row.RunWallS > 0 {
		row.Ratio = row.TranslateS / row.RunWallS
		row.MIPS = float64(mc.Stats.Instrs) / row.RunWallS / 1e6
	}
	return row, nil
}

// runObject executes a translated object on a fresh simulated vx86
// machine, optionally under the sampling profiler, and returns the
// simulated cycle and instruction counts.
func runObject(m *core.Module, nobj *codegen.NativeObject, out io.Writer, p *prof.Profiler) (cycles, instrs uint64, err error) {
	env := rt.NewEnv(mem.New(0, true), out)
	mc, err := machine.New(target.VX86, m, env)
	if err != nil {
		return 0, 0, err
	}
	if p != nil {
		mc.SetProfiler(p)
	}
	if err := mc.LoadObject(nobj); err != nil {
		return 0, 0, err
	}
	if _, err := mc.Run("main"); err != nil {
		if _, isExit := err.(*rt.ExitError); !isExit {
			return 0, 0, err
		}
	}
	return mc.Stats.Cycles, mc.Stats.Instrs, nil
}

// columnSet collects the JSON column names a bench row array carries,
// including the telemetry sub-columns as "telemetry.<name>".
func columnSet(data []byte) (map[string]bool, error) {
	var objs []map[string]json.RawMessage
	if err := json.Unmarshal(data, &objs); err != nil {
		return nil, err
	}
	keys := make(map[string]bool)
	for _, o := range objs {
		for k, v := range o {
			keys[k] = true
			if k == "telemetry" {
				var sub map[string]json.RawMessage
				if err := json.Unmarshal(v, &sub); err == nil {
					for sk := range sub {
						keys["telemetry."+sk] = true
					}
				}
			}
		}
	}
	return keys, nil
}

// missingBaselineColumns reports the columns the current rows emit that
// the baseline JSON lacks. A non-empty result means the baseline
// predates the current schema: comparing against it would silently read
// zeros for the new columns, so the caller must fail loudly instead.
func missingBaselineColumns(baseline []byte, rows []*Row) ([]string, error) {
	cur, err := json.Marshal(rows)
	if err != nil {
		return nil, err
	}
	curKeys, err := columnSet(cur)
	if err != nil {
		return nil, err
	}
	oldKeys, err := columnSet(baseline)
	if err != nil {
		return nil, err
	}
	var missing []string
	for k := range curKeys {
		if !oldKeys[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// compareRows diffs freshly measured rows against a baseline on the
// deterministic Table 2 columns. Identity columns (LOC, #LLVA, LLVA KB)
// changing at all means the workloads or front end drifted and the
// baseline must be re-recorded; native columns (#vx86, #vsparc, native
// size, virtual cycles) increasing means a code-quality regression.
// Decreases are improvements: reported, not fatal. allocs_per_op is
// guarded too, with slack: the count is dominated by the execution
// engine's deterministic allocations but the Go runtime can add a
// handful of its own, so only a growth beyond 10% plus a small
// absolute floor fails the run.
func compareRows(old, cur []*Row) (bad bool) {
	oldBy := make(map[string]*Row, len(old))
	for _, r := range old {
		oldBy[r.Name] = r
	}
	flag := func(name, col string, o, n float64, fatal bool) {
		if n == o {
			return
		}
		mark := "improved"
		if n > o {
			if fatal {
				mark = "REGRESSION"
				bad = true
			} else {
				mark = "DRIFT"
				bad = true
			}
		} else if fatal {
			mark = "improved"
		} else {
			mark = "DRIFT"
			bad = true
		}
		fmt.Printf("%-12s %-14s %12.4f -> %12.4f  %+8.2f%%  %s\n",
			name, col, o, n, 100*(n-o)/o, mark)
	}
	// Allocation counts get tolerance instead of exact matching.
	flagAllocs := func(name string, o, n uint64) {
		limit := o + o/10 + 16
		switch {
		case n > limit:
			bad = true
			fmt.Printf("%-12s %-14s %12d -> %12d  %+8.2f%%  REGRESSION (limit %d)\n",
				name, "allocs_per_op", o, n, 100*(float64(n)-float64(o))/float64(o), limit)
		case n < o:
			fmt.Printf("%-12s %-14s %12d -> %12d  %+8.2f%%  improved\n",
				name, "allocs_per_op", o, n, 100*(float64(n)-float64(o))/float64(o))
		}
	}
	for _, r := range cur {
		o := oldBy[r.Name]
		if o == nil {
			fmt.Printf("%-12s not in baseline\n", r.Name)
			bad = true
			continue
		}
		delete(oldBy, r.Name)
		flag(r.Name, "loc", float64(o.LOC), float64(r.LOC), false)
		flag(r.Name, "llva_kb", o.LLVAKB, r.LLVAKB, false)
		flag(r.Name, "llva_instrs", float64(o.NumLLVA), float64(r.NumLLVA), false)
		flag(r.Name, "data_kb", o.DataKB, r.DataKB, false)
		flag(r.Name, "native_kb", o.NativeKB, r.NativeKB, true)
		flag(r.Name, "vx86_instrs", float64(o.NumX86), float64(r.NumX86), true)
		flag(r.Name, "vsparc_instrs", float64(o.NumSparc), float64(r.NumSparc), true)
		flag(r.Name, "cycles", o.RunVirtualS*1e9, r.RunVirtualS*1e9, true)
		flagAllocs(r.Name, o.AllocsPerOp, r.AllocsPerOp)
	}
	for name := range oldBy {
		fmt.Printf("%-12s in baseline but not measured\n", name)
		bad = true
	}
	if !bad {
		fmt.Printf("compare: %d workloads match the baseline on all deterministic columns\n", len(cur))
	}
	return bad
}

func main() {
	one := flag.String("workload", "", "measure a single workload")
	noOpt := flag.Bool("O0", false, "skip the link-time O2 pipeline")
	md := flag.Bool("md", false, "emit a Markdown table")
	jsonOut := flag.Bool("json", false, "emit machine-readable rows with manager telemetry")
	workers := flag.Int("translate-workers", 0, "translation worker-pool size (0: one per CPU; 1: serial, the paper's setup)")
	compare := flag.String("compare", "", "baseline bench JSON: diff deterministic columns against a fresh measurement and exit non-zero on regression")
	tier2 := flag.Bool("tier2", false, "profile-guided tier-2 measurement: the vx86 run columns reflect superblock-optimized code built from a deterministic profile run (output must stay byte-identical)")
	flag.Parse()

	suite := workloads.All()
	if *one != "" {
		w := workloads.ByName(*one)
		if w == nil {
			fmt.Fprintf(os.Stderr, "llva-bench: unknown workload %q\n", *one)
			os.Exit(2)
		}
		suite = []*workloads.Workload{w}
	}

	var rows []*Row
	for _, w := range suite {
		row, err := Measure(w, !*noOpt, *workers, *tier2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llva-bench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			var m *core.Module
			if *noOpt {
				m, err = w.Compile()
			} else {
				m, err = w.CompileOptimized()
			}
			if err == nil {
				row.Telemetry, err = measureTelemetry(m, *workers, *tier2)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "llva-bench: %s telemetry: %v\n", w.Name, err)
				os.Exit(1)
			}
		}
		rows = append(rows, row)
	}

	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llva-bench: %v\n", err)
			os.Exit(2)
		}
		// A baseline that predates the current column schema would compare
		// the new columns against silent zeros; refuse it by name instead.
		missing, err := missingBaselineColumns(data, rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llva-bench: %s: %v\n", *compare, err)
			os.Exit(2)
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr,
				"llva-bench: baseline %s lacks %d column(s) the current run emits:\n",
				*compare, len(missing))
			for _, c := range missing {
				fmt.Fprintf(os.Stderr, "  %s\n", c)
			}
			fmt.Fprintln(os.Stderr, "re-record the baseline with the current llva-bench before comparing")
			os.Exit(1)
		}
		var old []*Row
		if err := json.Unmarshal(data, &old); err != nil {
			fmt.Fprintf(os.Stderr, "llva-bench: %s: %v\n", *compare, err)
			os.Exit(2)
		}
		if compareRows(old, rows) {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "llva-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *md {
		fmt.Println("| Program | LOC | Native KB | Data KB | LLVA KB | #LLVA | #vx86 | Ratio | #vsparc | Ratio | Translate (s) | Run (s, virtual) | Tr/Run |")
		fmt.Println("|---|---|---|---|---|---|---|---|---|---|---|---|---|")
		for _, r := range rows {
			fmt.Printf("| %s | %d | %.1f | %.1f | %.1f | %d | %d | %.2f | %d | %.2f | %.4f | %.4f | %.3f |\n",
				r.PaperName, r.LOC, r.NativeKB, r.DataKB, r.LLVAKB, r.NumLLVA,
				r.NumX86, r.RatioX86, r.NumSparc, r.RatioSparc,
				r.TranslateS, r.RunVirtualS, r.Ratio)
		}
		return
	}

	fmt.Printf("%-18s %5s %9s %7s %8s %7s %7s %6s %8s %6s %10s %10s %7s\n",
		"Program", "LOC", "NativeKB", "DataKB", "LLVAKB", "#LLVA", "#vx86", "ratio",
		"#vsparc", "ratio", "Transl(s)", "Run(s)", "Tr/Run")
	var sumRX, sumRS float64
	for _, r := range rows {
		fmt.Printf("%-18s %5d %9.1f %7.1f %8.1f %7d %7d %6.2f %8d %6.2f %10.4f %10.4f %7.3f\n",
			r.PaperName, r.LOC, r.NativeKB, r.DataKB, r.LLVAKB, r.NumLLVA,
			r.NumX86, r.RatioX86, r.NumSparc, r.RatioSparc,
			r.TranslateS, r.RunVirtualS, r.Ratio)
		sumRX += r.RatioX86
		sumRS += r.RatioSparc
	}
	n := float64(len(rows))
	fmt.Printf("\nmean expansion: vx86 %.2f, vsparc %.2f (paper: ~2-3 x86, ~2.5-4 SPARC)\n",
		sumRX/n, sumRS/n)
	var nat, llva float64
	for _, r := range rows {
		nat += r.NativeKB
		llva += r.LLVAKB
	}
	fmt.Printf("aggregate native-code/LLVA size ratio: %.2fx (paper: 1.3-2x for large programs; the LLVA side embeds initialized data — see the DataKB column)\n",
		nat/llva)
}
