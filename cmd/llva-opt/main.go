// llva-opt runs optimization passes over virtual object code.
//
// Usage: llva-opt [-passes mem2reg,dce | -O2] [-stats] [-o out.bc] input.bc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llva/internal/core"
	"llva/internal/obj"
	"llva/internal/passes"
)

func main() {
	out := flag.String("o", "", "output file (default: overwrite input)")
	passList := flag.String("passes", "", "comma-separated pass list")
	o2 := flag.Bool("O2", false, "run the full link-time pipeline")
	stats := flag.Bool("stats", false, "print optimization statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llva-opt [-O2|-passes p1,p2] [-stats] [-o out.bc] input.bc")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := obj.Decode(data)
	if err != nil {
		fatal(err)
	}

	s := passes.NewStats()
	switch {
	case *o2:
		if _, err := passes.O2().Run(m, s); err != nil {
			fatal(err)
		}
	case *passList != "":
		var pipe passes.Pipeline
		for _, name := range strings.Split(*passList, ",") {
			p, ok := passes.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown pass %q", name))
			}
			pipe.Passes = append(pipe.Passes, p)
		}
		if _, err := pipe.Run(m, s); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("nothing to do: pass -O2 or -passes"))
	}
	if err := core.Verify(m); err != nil {
		fatal(fmt.Errorf("IR fails verification after passes: %w", err))
	}
	if *stats {
		fmt.Fprint(os.Stderr, s)
	}

	enc, err := obj.Encode(m)
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = flag.Arg(0)
	}
	if err := os.WriteFile(dst, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-opt:", err)
	os.Exit(1)
}
