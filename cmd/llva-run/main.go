// llva-run is the LLEE front door: it loads an LLVA executable, uses a
// cached translation if the storage API has one (validating its stamp),
// JIT-translates on demand otherwise, executes %main on the simulated
// processor, and writes new translations back to the cache.
//
// Usage: llva-run [-target vx86|vsparc] [-cache DIR] [-interp] [-stats] prog.bc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/obj"
	"llva/internal/rt"
	"llva/internal/target"
)

func main() {
	tgt := flag.String("target", "vsparc", "target I-ISA: vx86 or vsparc")
	cacheDir := flag.String("cache", "", "offline translation cache directory (storage API)")
	useInterp := flag.Bool("interp", false, "run on the reference interpreter instead")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	offline := flag.Bool("translate-only", false, "offline-translate into the cache, do not execute")
	profile := flag.Bool("profile", false, "gather and store a profile after the run (needs -cache)")
	idleOpt := flag.Bool("idle-optimize", false, "idle-time PGO: re-layout from the stored profile and retranslate into the cache")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llva-run [-target T] [-cache DIR] [-interp] prog.bc")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := obj.Decode(data)
	if err != nil {
		fatal(err)
	}

	if *useInterp {
		ip, err := interp.New(m, os.Stdout)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		code, err := ip.RunMain()
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "interp: %d instructions in %v\n",
				ip.Stats.Instructions, time.Since(start))
		}
		os.Exit(code)
	}

	var d *target.Desc
	switch *tgt {
	case "vx86":
		d = target.VX86
	case "vsparc":
		d = target.VSPARC
	default:
		fatal(fmt.Errorf("unknown target %q", *tgt))
	}

	var opts []llee.Option
	if *cacheDir != "" {
		st, err := llee.NewDirStorage(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, llee.WithStorage(st))
	}
	mg, err := llee.NewManager(m, d, os.Stdout, opts...)
	if err != nil {
		fatal(err)
	}
	if *offline {
		if err := mg.TranslateOffline(); err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "offline: translated %d functions in %v\n",
				mg.Stats.Translations, time.Duration(mg.Stats.TranslateNS))
		}
		return
	}
	if *idleOpt {
		ts, err := mg.IdleTimeOptimize()
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "idle-time: %d traces, %.0f%% coverage, %d functions retranslated\n",
				ts.Traces, ts.Coverage*100, mg.Stats.Translations)
		}
		return
	}
	start := time.Now()
	v, err := mg.Run("main")
	code := int(int32(v))
	if err != nil {
		if ee, ok := err.(*rt.ExitError); ok {
			code = ee.Code
		} else {
			fatal(err)
		}
	}
	if *profile {
		if perr := mg.GatherProfile("main"); perr != nil {
			fatal(perr)
		}
	}
	if *stats {
		mc := mg.Machine()
		fmt.Fprintf(os.Stderr,
			"target=%s cacheHit=%v translated=%d translateTime=%v\n"+
				"instrs=%d cycles=%d calls=%d externs=%d wall=%v\n",
			d.Name, mg.Stats.CacheHit, mg.Stats.Translations,
			time.Duration(mg.Stats.TranslateNS),
			mc.Stats.Instrs, mc.Stats.Cycles, mc.Stats.Calls,
			mc.Stats.ExternCalls, time.Since(start))
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-run:", err)
	os.Exit(1)
}
