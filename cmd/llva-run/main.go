// llva-run is the LLEE front door: it loads an LLVA executable, uses a
// cached translation if the storage API has one (validating its stamp),
// JIT-translates on demand otherwise, executes %main on the simulated
// processor, and writes new translations back to the cache.
//
// Usage: llva-run [-target vx86|vsparc] [-cache DIR] [-interp] [-stats]
//
//	[-translate-workers N] [-speculate=false] [-timeout D]
//	[-metrics-addr HOST:PORT] [-trace-log FILE] [-trace-out FILE]
//	[-prof] [-prof-rate N] [-prof-out FILE] [-prof-store] [-tier2]
//	[-tenant ID] [-flight-events N] prog.bc
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/obj"
	"llva/internal/prof"
	"llva/internal/rt"
	"llva/internal/target"
	"llva/internal/telemetry"
)

// exitHooks run before every exit path (telemetry flushing must survive
// os.Exit, which skips defers).
var exitHooks []func()

func exit(code int) {
	for _, h := range exitHooks {
		h()
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-run:", err)
	exit(1)
}

// serveMetrics exposes the registry (and the process's expvar/pprof
// debug surface) on addr. It listens synchronously so a bad address
// fails loudly, then serves in the background for the program's life.
// The guest observability surface rides along: the live span trace at
// /debug/llva/trace (Chrome trace_event JSON, Perfetto-loadable) and,
// when sampling is on, the folded guest stacks at /debug/llva/prof.
func serveMetrics(reg *telemetry.Registry, tracer *prof.Tracer, prober *prof.Profiler, addr string) {
	reg.Publish("llva")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics/events", reg.EventsHandler())
	mux.Handle("/debug/llva/trace", tracer.Handler())
	mux.HandleFunc("/debug/llva/prof", func(w http.ResponseWriter, r *http.Request) {
		if prober == nil {
			http.Error(w, "guest profiler not enabled (run with -prof)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = prober.WriteFolded(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("metrics listener: %w", err))
	}
	fmt.Fprintf(os.Stderr, "llva-run: metrics on http://%s/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
}

func main() {
	tgt := flag.String("target", "vsparc", "target I-ISA: vx86 or vsparc")
	cacheDir := flag.String("cache", "", "offline translation cache directory (storage API)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this many unique bytes (0: unlimited; needs -cache)")
	useInterp := flag.Bool("interp", false, "run on the reference interpreter instead")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	offline := flag.Bool("translate-only", false, "offline-translate into the cache, do not execute")
	profile := flag.Bool("profile", false, "gather and store a profile after the run (needs -cache)")
	idleOpt := flag.Bool("idle-optimize", false, "idle-time PGO: re-layout from the stored profile and retranslate into the cache")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address (/metrics, /metrics/events, /debug/llva/trace, /debug/llva/prof, /debug/vars, /debug/pprof)")
	traceLog := flag.String("trace-log", "", "write the structured event log as JSON lines to FILE at exit")
	traceOut := flag.String("trace-out", "", "write the session span trace as Chrome trace_event JSON (Perfetto-loadable) to FILE at exit")
	profOn := flag.Bool("prof", false, "sample the guest's virtual PC and call stack every -prof-rate retired instructions")
	profRate := flag.Int("prof-rate", prof.DefaultRate, "guest sampling period in retired virtual instructions")
	profOut := flag.String("prof-out", "", "write the guest profile as folded stacks to FILE at exit (implies -prof)")
	profStore := flag.Bool("prof-store", false, "persist the guest profile through the storage API after the run (implies -prof, needs -cache)")
	tenant := flag.String("tenant", "", "tenant label carried on this session's trace spans")
	flightEvents := flag.Int("flight-events", 16, "trap-time flight recorder depth in telemetry events (0: disable crash reports)")
	workers := flag.Int("translate-workers", 0, "translation worker-pool size for offline and speculative JIT translation (0: one per CPU)")
	speculate := flag.Bool("speculate", true, "speculatively JIT-translate static callees on background workers")
	tier2 := flag.Bool("tier2", false, "profile-guided tier-2 translation: re-translate hot functions with superblocks and inlining when a stored guest profile exists (needs -cache; store one with -prof-store)")
	timeout := flag.Duration("timeout", 0, "abort execution after this long on the wall clock (0: no limit)")
	gas := flag.Uint64("gas", 0, "per-run gas budget in simulated cycles; exhaustion stops the run at a block boundary (0: unmetered)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llva-run [-target T] [-cache DIR] [-interp] prog.bc")
		os.Exit(2)
	}

	reg := telemetry.New()
	var prober *prof.Profiler
	if *profOut != "" || *profStore {
		*profOn = true
	}
	if *profOn {
		prober = prof.NewProfiler(*profRate)
	}
	tracer := prof.NewTracer()
	if *metricsAddr != "" {
		serveMetrics(reg, tracer, prober, *metricsAddr)
	}
	if *traceOut != "" {
		path := *traceOut
		exitHooks = append(exitHooks, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "llva-run: trace-out:", err)
				return
			}
			defer f.Close()
			if err := tracer.WriteChromeJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "llva-run: trace-out:", err)
			}
		})
	}
	if *profOut != "" {
		path := *profOut
		exitHooks = append(exitHooks, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "llva-run: prof-out:", err)
				return
			}
			defer f.Close()
			if err := prober.WriteFolded(f); err != nil {
				fmt.Fprintln(os.Stderr, "llva-run: prof-out:", err)
			}
		})
	}
	if *traceLog != "" {
		path := *traceLog
		exitHooks = append(exitHooks, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "llva-run: trace-log:", err)
				return
			}
			defer f.Close()
			if err := reg.WriteEventsJSONL(f); err != nil {
				fmt.Fprintln(os.Stderr, "llva-run: trace-log:", err)
			}
		})
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := obj.Decode(data)
	if err != nil {
		fatal(err)
	}

	if *useInterp {
		ip, err := interp.New(m, os.Stdout)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		code, err := ip.RunMain()
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "interp: %d instructions in %v\n",
				ip.Stats.Instructions, time.Since(start))
		}
		exit(code)
	}

	var d *target.Desc
	switch *tgt {
	case "vx86":
		d = target.VX86
	case "vsparc":
		d = target.VSPARC
	default:
		fatal(fmt.Errorf("unknown target %q", *tgt))
	}

	sysOpts := []llee.SystemOption{
		llee.WithTelemetry(reg),
		llee.WithTranslateWorkers(*workers),
		llee.WithSpeculation(*speculate),
		llee.WithTracer(tracer),
		llee.WithTier2(*tier2),
	}
	sessOpts := []llee.SessionOption{
		llee.WithTenant(*tenant),
		llee.WithFlightRecorder(*flightEvents),
		llee.WithGas(*gas),
	}
	if prober != nil {
		sessOpts = append(sessOpts, llee.WithProfiler(prober))
	}
	if *cacheDir != "" {
		st, err := llee.NewDirStorage(*cacheDir)
		if err != nil {
			fatal(err)
		}
		st.SetMaxBytes(*cacheMax)
		st.SetTelemetry(reg)
		sysOpts = append(sysOpts, llee.WithStorage(st))
	} else if *cacheMax != 0 {
		fatal(fmt.Errorf("-cache-max-bytes requires -cache"))
	}
	sys := llee.NewSystem(sysOpts...)
	// Close flushes pending cache write-back (including speculative
	// translations) on every exit path.
	exitHooks = append(exitHooks, func() {
		if err := sys.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "llva-run: close:", err)
		}
	})
	sess, err := sys.NewSession(m, d, os.Stdout, sessOpts...)
	if err != nil {
		fatal(err)
	}
	if *offline {
		if err := sess.TranslateOffline(); err != nil {
			fatal(err)
		}
		if *stats {
			st := sess.Stats()
			fmt.Fprintf(os.Stderr, "offline: translated %d functions in %v\n",
				st.Translations, time.Duration(st.TranslateNS))
		}
		exit(0)
	}
	if *idleOpt {
		ts, err := sess.IdleTimeOptimize()
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "idle-time: %d traces, %.0f%% coverage, %d functions retranslated\n",
				ts.Traces, ts.Coverage*100, sess.Stats().Translations)
		}
		exit(0)
	}

	// SIGINT/SIGTERM cancel the run's context: the machine stops at the
	// next basic-block boundary and llva-run exits 130, the shell
	// convention for interrupted programs. -timeout does the same on a
	// deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := sess.Run(ctx, "main")
	code := int(int32(res.Value))
	if err != nil {
		var ee *rt.ExitError
		switch {
		case errors.As(err, &ee):
			code = ee.Code
		case errors.Is(err, llee.ErrCanceled):
			fmt.Fprintln(os.Stderr, "llva-run:", err)
			exit(130)
		case errors.Is(err, llee.ErrOutOfGas):
			// Exit 120: the -gas budget ran out (distinct from 130 so
			// scripts can tell a cancel from an exhaustion).
			fmt.Fprintln(os.Stderr, "llva-run:", err)
			exit(120)
		default:
			// An unhandled trap with the flight recorder on renders the
			// full post-mortem: registers, virtual backtrace, disassembly
			// around the faulting PC, and the last engine events.
			if cr := sess.LastCrash(); cr != nil {
				fmt.Fprintln(os.Stderr, "llva-run:", err)
				fmt.Fprintln(os.Stderr)
				_ = cr.Render(os.Stderr)
				exit(1)
			}
			fatal(err)
		}
	}
	if *profile {
		if perr := sess.GatherProfile("main"); perr != nil {
			fatal(perr)
		}
	}
	if *profStore {
		if perr := sess.StoreGuestProfile(); perr != nil {
			fatal(perr)
		}
	}
	if *stats {
		mc := sess.Machine()
		st := sess.Stats()
		fmt.Fprintf(os.Stderr,
			"target=%s cacheHit=%v translated=%d translateTime=%v\n"+
				"instrs=%d cycles=%d calls=%d externs=%d wall=%v\n",
			d.Name, st.CacheHit, st.Translations,
			time.Duration(st.TranslateNS),
			mc.Stats.Instrs, mc.Stats.Cycles, mc.Stats.Calls,
			mc.Stats.ExternCalls, res.Wall)
	}
	if *stats && prober != nil {
		_ = prober.WriteReport(os.Stderr)
	}
	exit(code)
}
