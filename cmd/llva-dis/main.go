// llva-dis disassembles virtual object code (.bc) back to LLVA assembly.
//
// Usage: llva-dis [-o out.llva] input.bc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llva/internal/asm"
	"llva/internal/obj"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llva-dis [-o out.llva] input.bc")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := obj.Decode(data)
	if err != nil {
		fatal(err)
	}
	text := asm.Print(m)
	if *out == "" || *out == "-" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
	_ = strings.TrimSuffix
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-dis:", err)
	os.Exit(1)
}
