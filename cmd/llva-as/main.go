// llva-as assembles LLVA textual assembly (.llva) into virtual object
// code (.bc).
//
// Usage: llva-as [-o out.bc] input.llva
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/obj"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .bc)")
	noVerify := flag.Bool("noverify", false, "skip the IR verifier")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llva-as [-o out.bc] input.llva")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	m, err := asm.Parse(strings.TrimSuffix(in, ".llva"), string(src))
	if err != nil {
		fatal(err)
	}
	if !*noVerify {
		if err := core.Verify(m); err != nil {
			fatal(err)
		}
	}
	data, err := obj.Encode(m)
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".llva") + ".bc"
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-as:", err)
	os.Exit(1)
}
