// llva-llc is the offline static translator: it compiles virtual object
// code to native code for a simulated I-ISA — across a worker pool, one
// worker per CPU by default — and reports the paper's Table 2
// per-function metrics.
//
// Usage: llva-llc [-target vx86|vsparc] [-workers N] [-stats] input.bc
package main

import (
	"flag"
	"fmt"
	"os"

	"llva/internal/llee"
	"llva/internal/obj"
	"llva/internal/target"
)

func main() {
	tgt := flag.String("target", "vsparc", "target I-ISA: vx86 or vsparc")
	stats := flag.Bool("stats", true, "print per-function translation metrics")
	workers := flag.Int("workers", 0, "translation worker-pool size (0: one per CPU)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: llva-llc [-target vx86|vsparc] input.bc")
		os.Exit(2)
	}
	var d *target.Desc
	switch *tgt {
	case "vx86":
		d = target.VX86
	case "vsparc":
		d = target.VSPARC
	default:
		fatal(fmt.Errorf("unknown target %q", *tgt))
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := obj.Decode(data)
	if err != nil {
		fatal(err)
	}
	sys := llee.NewSystem(llee.WithTranslateWorkers(*workers))
	nobj, err := sys.Translate(m, d)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("%-24s %10s %10s %8s %10s\n", "function", "#llva", "#native", "ratio", "bytes")
		totLLVA, totNative, totBytes := 0, 0, 0
		for _, f := range nobj.Funcs {
			ratio := 0.0
			if f.NumLLVA > 0 {
				ratio = float64(f.NumInstrs) / float64(f.NumLLVA)
			}
			fmt.Printf("%-24s %10d %10d %8.2f %10d\n",
				f.Name, f.NumLLVA, f.NumInstrs, ratio, len(f.Code))
			totLLVA += f.NumLLVA
			totNative += f.NumInstrs
			totBytes += len(f.Code)
		}
		fmt.Printf("%-24s %10d %10d %8.2f %10d\n", "TOTAL",
			totLLVA, totNative, float64(totNative)/float64(totLLVA), totBytes)
		fmt.Printf("llva object size: %d bytes; native size: %d bytes (%.2fx)\n",
			len(data), totBytes, float64(totBytes)/float64(len(data)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llva-llc:", err)
	os.Exit(1)
}
