// Quickstart: build an LLVA function with the IR builder, verify it,
// print its assembly, encode it to virtual object code, then execute it
// three ways — on the reference interpreter and, via the LLEE execution
// manager, JIT-translated onto both simulated processors.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/obj"
	"llva/internal/target"
)

// buildModule constructs:
//
//	long %sumsq(long %n) { sum of i*i for i in [0, n) }
//	int  %main()         { print_int(sumsq(100)); }
func buildModule() *core.Module {
	m := core.NewModule("quickstart")
	ctx := m.Types()

	long := ctx.Long()
	sumsq := m.NewFunction("sumsq", ctx.Function(long, []*core.Type{long}, false))
	n := sumsq.Params[0]
	n.SetName("n")

	entry := sumsq.NewBlock("entry")
	loop := sumsq.NewBlock("loop")
	exit := sumsq.NewBlock("exit")

	b := core.NewBuilder(sumsq)
	b.SetBlock(entry)
	b.Br(loop)

	b.SetBlock(loop)
	i := b.Phi(long, "i")
	sum := b.Phi(long, "sum")
	sq := b.Mul(i, i, "sq")
	sum2 := b.Add(sum, sq, "sum2")
	i2 := b.Add(i, core.NewInt(long, 1), "i2")
	done := b.SetGE(i2, n, "done")
	b.CondBr(done, exit, loop)

	i.AddPhiIncoming(core.NewInt(long, 0), entry)
	i.AddPhiIncoming(i2, loop)
	sum.AddPhiIncoming(core.NewInt(long, 0), entry)
	sum.AddPhiIncoming(sum2, loop)

	b.SetBlock(exit)
	res := b.Phi(long, "res")
	res.AddPhiIncoming(sum2, loop)
	b.Ret(res)

	// %main prints the result through the runtime library.
	printInt := m.NewFunction("print_int", ctx.Function(ctx.Void(), []*core.Type{long}, false))
	printNL := m.NewFunction("print_nl", ctx.Function(ctx.Void(), nil, false))
	mainFn := m.NewFunction("main", ctx.Function(ctx.Int(), nil, false))
	mb := core.NewBuilder(mainFn)
	mb.SetBlock(mainFn.NewBlock("entry"))
	v := mb.Call(sumsq, []core.Value{core.NewInt(long, 100)}, "v")
	mb.Call(printInt, []core.Value{v}, "")
	mb.Call(printNL, nil, "")
	mb.Ret(core.NewInt(ctx.Int(), 0))
	return m
}

func main() {
	m := buildModule()
	if err := core.Verify(m); err != nil {
		log.Fatalf("verify: %v", err)
	}

	fmt.Println("=== LLVA assembly ===")
	fmt.Print(asm.Print(m))

	data, err := obj.Encode(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== virtual object code: %d bytes for %d instructions ===\n",
		len(data), m.Function("sumsq").NumInstructions()+m.Function("main").NumInstructions())

	fmt.Println("\n=== reference interpreter ===")
	ip, err := interp.New(m, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ip.RunMain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(%d LLVA instructions executed)\n", ip.Stats.Instructions)

	// One System per process; one Session per execution. Sessions of the
	// same module share the system's translation cache.
	sys := llee.NewSystem()
	defer sys.Close()
	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		fmt.Printf("\n=== LLEE + JIT on %s ===\n", d.Name)
		sess, err := sys.NewSession(m, d, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		before := sess.Stats().Translations // counters aggregate system-wide
		res, err := sess.Run(context.Background(), "main")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%d native instructions, %d cycles, %d functions JIT-translated)\n",
			res.Instrs, res.Cycles, sess.Stats().Translations-before)
	}
}
