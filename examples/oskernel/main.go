// OS kernel support: the paper's Section 3.5 mechanisms — intrinsic
// functions, the privileged bit, trap handlers as ordinary LLVA
// functions, and the Section 4.1 storage-API registration that lets an
// operating system enable offline translation caching.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/minic"
	"llva/internal/target"
)

const kernel = `
declare bool %llva.priv.get()
declare void %llva.priv.set(bool %p)
declare void %llva.trap.register(uint %num, sbyte* %handler)
declare void %llva.trap.raise(uint %num)
declare void %llva.storage.register(sbyte* %api)
declare sbyte* %llva.storage.get()
declare void %print_str(sbyte* %s)
declare void %print_int(long %v)
declare void %print_nl()

%msg.boot = constant [14 x ubyte] "kernel: boot "
%msg.trap = constant [15 x ubyte] "handler: trap "
%msg.user = constant [18 x ubyte] "user: privileged="

;; A trap handler is an ordinary LLVA function taking the trap number and
;; a void* info pointer (paper, Section 3.5).
void %handler(uint %num, sbyte* %info) {
entry:
    %p = getelementptr [15 x ubyte]* %msg.trap, long 0, long 0
    %p8 = cast ubyte* %p to sbyte*
    call void %print_str(sbyte* %p8)
    %n = cast uint %num to long
    call void %print_int(long %n)
    call void %print_nl()
    ret void
}

void %usercode() {
entry:
    %p = getelementptr [18 x ubyte]* %msg.user, long 0, long 0
    %p8 = cast ubyte* %p to sbyte*
    call void %print_str(sbyte* %p8)
    %priv = call bool %llva.priv.get()
    %pl = cast bool %priv to long
    call void %print_int(long %pl)
    call void %print_nl()
    ;; raising a user trap dispatches to the registered handler
    call void %llva.trap.raise(uint 17)
    ret void
}

int %main() {
entry:
    %b = getelementptr [14 x ubyte]* %msg.boot, long 0, long 0
    %b8 = cast ubyte* %b to sbyte*
    call void %print_str(sbyte* %b8)
    call void %print_nl()

    ;; the OS registers its storage-API entry point with the translator
    ;; (a simple, indefinitely extensible linkage mechanism, Section 4.1)
    %api = cast long 81985529216486895 to sbyte*
    call void %llva.storage.register(sbyte* %api)
    %got = call sbyte* %llva.storage.get()
    %same = seteq sbyte* %got, %api
    %sl = cast bool %same to long
    call void %print_int(long %sl)
    call void %print_nl()

    ;; install a trap handler while privileged
    %h = cast void (uint, sbyte*)* %handler to sbyte*
    call void %llva.trap.register(uint 17, sbyte* %h)

    ;; drop privileges and enter user code
    call void %llva.priv.set(bool false)
    call void %usercode()
    ret int 0
}
`

func main() {
	m, err := asm.Parse("oskernel", kernel)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== trap handlers, privilege, storage registration (interpreter) ===")
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		log.Fatal(err)
	}
	_, err = ip.RunMain()
	fmt.Print(out.String())
	if te, ok := err.(*interp.TrapError); ok {
		fmt.Printf("after the handler returned, trap %d remained fatal for the faulting code (precise)\n", te.Num)
	} else if err != nil {
		log.Fatal(err)
	}

	// A user-mode attempt to use a privileged intrinsic must trap.
	fmt.Println("\n=== privilege enforcement ===")
	bad := `
declare void %llva.priv.set(bool %p)
int %main() {
entry:
    call void %llva.priv.set(bool false)
    ;; now unprivileged: this must raise a privilege trap
    call void %llva.priv.set(bool true)
    ret int 0
}
`
	m2, err := asm.Parse("priv", bad)
	if err != nil {
		log.Fatal(err)
	}
	ip2, err := interp.New(m2, &out)
	if err != nil {
		log.Fatal(err)
	}
	_, err = ip2.RunMain()
	if te, ok := err.(*interp.TrapError); ok && te.Num == interp.TrapPrivilege {
		fmt.Println("privileged intrinsic from user mode: privilege trap delivered ✓")
	} else {
		log.Fatalf("expected privilege trap, got %v", err)
	}

	// The OS side of Section 4.1: with the storage API implemented
	// (directory-backed here), translations persist across "boots".
	fmt.Println("\n=== storage API: offline caching across runs ===")
	prog, err := minic.Compile("app", `
int main() { print_str("app output"); print_nl(); return 0; }
`)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := llee.NewDirStorage("/tmp/llva-oskernel-cache")
	if err != nil {
		log.Fatal(err)
	}
	for run := 1; run <= 2; run++ {
		var o strings.Builder
		sys := llee.NewSystem(llee.WithStorage(dir))
		sess, err := sys.NewSession(prog, target.VSPARC, &o)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Run(context.Background(), "main"); err != nil {
			log.Fatal(err)
		}
		if err := sys.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: cacheHit=%v translated=%d output=%q\n",
			run, sess.CacheHit(), sess.Stats().Translations, o.String())
	}
}
