// Quadtree: the paper's Figure 2 end to end. The C function
// Sum3rdChildren is compiled by the MiniC front-end; we show the LLVA it
// produces (the same shape as Figure 2(b): alloca for the address-taken
// local, getelementptr with symbolic indices, phi at the join), check the
// 20-vs-32-byte offset observation from Section 3.1, and run the program
// on the interpreter and both simulated processors.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/minic"
	"llva/internal/target"
)

// The paper's Figure 2(a), extended with a driver that builds a small
// quadtree and prints the recursive sum.
const source = `
struct QuadTree {
	double Data;
	struct QuadTree *Children[4];
};

void Sum3rdChildren(struct QuadTree *T, double *Result) {
	double Ret;
	if (T == 0) {
		Ret = 0.0;
	} else {
		struct QuadTree *Child3 = T->Children[3];
		double V;
		Sum3rdChildren(Child3, &V);
		Ret = V + T->Data;
	}
	*Result = Ret;
}

struct QuadTree *makeTree(int depth, double seed) {
	if (depth == 0) return (struct QuadTree*)0;
	struct QuadTree *t = (struct QuadTree*)malloc(sizeof(struct QuadTree));
	t->Data = seed;
	int i;
	for (i = 0; i < 4; i++)
		t->Children[i] = makeTree(depth - 1, seed * 2.0 + (double)i);
	return t;
}

int main() {
	struct QuadTree *root = makeTree(6, 1.0);
	double sum;
	Sum3rdChildren(root, &sum);
	print_float(sum); print_nl();
	return 0;
}
`

func main() {
	m, err := minic.Compile("quadtree", source)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== LLVA for Sum3rdChildren (compare paper Figure 2(b)) ===")
	fmt.Print(asm.PrintFunction(m.Function("Sum3rdChildren")))

	// Section 3.1: the offset of T[0].Children[3] is 32 bytes with 64-bit
	// pointers and 20 bytes with 32-bit pointers — computed from the SAME
	// virtual object code.
	qt := m.Types().NamedTypes()["struct.QuadTree"]
	idx := []*core.Constant{
		core.NewInt(m.Types().Long(), 0),
		core.NewUint(m.Types().UByte(), 1),
		core.NewInt(m.Types().Long(), 3),
	}
	off64, _ := core.Layout{PointerSize: 8}.GEPOffset(qt, idx)
	off32, _ := core.Layout{PointerSize: 4}.GEPOffset(qt, idx)
	fmt.Printf("\ngetelementptr %%QT* %%T, long 0, ubyte 1, long 3:\n")
	fmt.Printf("  offset with 64-bit pointers: %d bytes (paper says 32)\n", off64)
	fmt.Printf("  offset with 32-bit pointers: %d bytes (paper says 20)\n", off32)

	fmt.Println("\n=== interpreter ===")
	ip, err := interp.New(m, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ip.RunMain(); err != nil {
		log.Fatal(err)
	}

	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		var out strings.Builder
		sys := llee.NewSystem()
		sess, err := sys.NewSession(m, d, &out)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Run(context.Background(), "main"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s === %s", d.Name, out.String())
	}
}
