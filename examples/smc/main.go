// SMC: the paper's constrained self-modifying code model (Section 3.4).
// A program replaces one of its own functions via the llva.smc.replace
// intrinsic; the change takes effect on the NEXT invocation only. On the
// simulated processor this exercises the full translator path: LLEE marks
// the generated native code invalid and retranslates on the next call.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/target"
)

const program = `
declare void %llva.smc.replace(sbyte* %target, sbyte* %source)
declare void %print_int(long %v)
declare void %print_char(long %c)
declare void %print_nl()

;; A "tuned kernel" the program specializes at run time, like dynamic code
;; generation for high-performance kernels (which the paper notes is the
;; common real use of self-modification).
long %kernel(long %x) {
entry:
    ;; generic version: full multiply
    %r = mul long %x, 8
    ret long %r
}
long %kernel.tuned(long %x) {
entry:
    ;; specialized version: strength-reduced shift
    %r = shl long %x, ubyte 3
    ret long %r
}

int %main() {
entry:
    br label %loop
loop:
    %i = phi long [ 0, %entry ], [ %i2, %cont ]
    %v = call long %kernel(long %i)
    call void %print_int(long %v)
    call void %print_char(long 32)
    ;; after iteration 2, install the tuned kernel — affects the NEXT call
    %switch = seteq long %i, 2
    br bool %switch, label %replace, label %cont
replace:
    %t = cast long (long)* %kernel to sbyte*
    %s = cast long (long)* %kernel.tuned to sbyte*
    call void %llva.smc.replace(sbyte* %t, sbyte* %s)
    br label %cont
cont:
    %i2 = add long %i, 1
    %more = setlt long %i2, 6
    br bool %more, label %loop, label %done
done:
    call void %print_nl()
    ret int 0
}
`

func main() {
	m, err := asm.Parse("smc", program)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== interpreter ===")
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ip.RunMain(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.String())
	fmt.Printf("%d code invalidation(s)\n", ip.Stats.SMCInvalidations)

	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		fmt.Printf("\n=== %s: invalidation + retranslation ===\n", d.Name)
		var mout strings.Builder
		sys := llee.NewSystem()
		sess, err := sys.NewSession(m, d, &mout)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Run(context.Background(), "main"); err != nil {
			log.Fatal(err)
		}
		fmt.Print(mout.String())
		fmt.Printf("functions translated: %d (kernel translated twice), invalidations: %d\n",
			sess.Stats().Translations, sess.Stats().Invalidations)
	}
	fmt.Println("\nboth versions ran: 0 8 16 (generic ×8) then 24 32 40 (tuned <<3)")
}
