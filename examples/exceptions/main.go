// Exceptions: the paper's exception model (Section 3.3) and the
// invoke/unwind mechanism for source-language exceptions.
//
//   - Per-instruction ExceptionsEnabled: the same div-by-zero either traps
//     precisely or is ignored, depending on a static attribute.
//   - invoke/unwind: stack unwinding across frames, on the interpreter and
//     on both simulated processors.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"llva/internal/asm"
	"llva/internal/core"
	"llva/internal/interp"
	"llva/internal/llee"
	"llva/internal/target"
)

const program = `
declare void %print_str(sbyte* %s)
declare void %print_int(long %v)
declare void %print_nl()

%msg.div = constant [20 x ubyte] "suppressed div gave"
%msg.caught = constant [7 x ubyte] "caught"

;; The ExceptionsEnabled attribute: !noexc suppresses the trap, the
;; default (enabled for div) delivers it precisely.
long %safe_div(long %a, long %b) {
entry:
    %q = div long %a, %b !noexc
    ret long %q
}

;; A parser that unwinds on malformed input.
void %parse(int %depth) {
entry:
    %bad = setgt int %depth, 3
    br bool %bad, label %fail, label %deeper
fail:
    unwind
deeper:
    %iszero = seteq int %depth, 0
    br bool %iszero, label %done, label %recurse
recurse:
    %d2 = sub int %depth, 1
    call void %parse(int %d2)
    br label %done
done:
    ret void
}

int %try_parse(int %depth) {
entry:
    invoke void %parse(int %depth) to label %ok unwind label %handler
ok:
    ret int 0
handler:
    %p = getelementptr [7 x ubyte]* %msg.caught, long 0, long 0
    %p8 = cast ubyte* %p to sbyte*
    call void %print_str(sbyte* %p8)
    call void %print_nl()
    ret int 1
}

int %main() {
entry:
    ;; 1. suppressed exception: no trap, result defined as 0
    %q = call long %safe_div(long 7, long 0)
    %m = getelementptr [20 x ubyte]* %msg.div, long 0, long 0
    %m8 = cast ubyte* %m to sbyte*
    call void %print_str(sbyte* %m8)
    call void %print_int(long %q)
    call void %print_nl()
    ;; 2. unwinding: depth 2 parses fine, depth 9 unwinds to the handler
    %a = call int %try_parse(int 2)
    %b = call int %try_parse(int 9)
    %r = add int %a, %b
    ret int %r
}
`

func main() {
	m, err := asm.Parse("exceptions", program)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Verify(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== interpreter ===")
	var out strings.Builder
	ip, err := interp.New(m, &out)
	if err != nil {
		log.Fatal(err)
	}
	code, err := ip.RunMain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.String())
	fmt.Printf("exit status %d; %d exception(s) suppressed by !noexc\n",
		code, ip.Stats.TrapsIgnored)

	for _, d := range []*target.Desc{target.VX86, target.VSPARC} {
		fmt.Printf("\n=== %s (native, via LLEE) ===\n", d.Name)
		var mout strings.Builder
		sys := llee.NewSystem()
		sess, err := sys.NewSession(m, d, &mout)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(context.Background(), "main")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(mout.String())
		fmt.Printf("exit status %d\n", int(int32(res.Value)))
	}

	// Demonstrate that the ENABLED form of the same division traps.
	fmt.Println("\n=== precise trap with exceptions enabled ===")
	trapping := strings.Replace(program, "div long %a, %b !noexc", "div long %a, %b", 1)
	m2, err := asm.Parse("exceptions-trap", trapping)
	if err != nil {
		log.Fatal(err)
	}
	ip2, err := interp.New(m2, &out)
	if err != nil {
		log.Fatal(err)
	}
	_, err = ip2.RunMain()
	if te, ok := err.(*interp.TrapError); ok {
		fmt.Printf("delivered precisely: trap %d (%s)\n", te.Num, te.Detail)
	} else {
		log.Fatalf("expected a trap, got %v", err)
	}
}
