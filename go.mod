module llva

go 1.22
