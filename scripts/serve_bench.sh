#!/bin/sh
# serve_bench.sh — run a llva-loadgen burst against a freshly started
# llva-serve and tear it down, for repeatable serve-throughput numbers.
#
# Parameters (environment, all optional):
#   PORT       listen port                     (default 18080)
#   SESSIONS   concurrent client sessions      (default 10000)
#   TOTAL      total runs                      (default 50000)
#   GAS        per-run gas budget              (default 10000000)
#   POOL       llva-serve -pool value          (default 0: one per worker)
#   QUEUE      llva-serve -queue value         (default 2 x SESSIONS, so a
#              full burst admits without shedding and the measurement is
#              throughput, not admission control)
#   JSON_OUT   archive the report here         (default: none)
#   COMPARE    baseline JSON: exit 2 when sessions/sec < RATIO x baseline
#   RATIO      compare floor fraction          (default 0.75)
#   SERVE_ARGS extra llva-serve flags
set -eu

PORT="${PORT:-18080}"
SESSIONS="${SESSIONS:-10000}"
TOTAL="${TOTAL:-50000}"
GAS="${GAS:-10000000}"
POOL="${POOL:-0}"
QUEUE="${QUEUE:-$((SESSIONS * 2))}"
RATIO="${RATIO:-0.75}"

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
trap 'kill "$serve_pid" 2>/dev/null || true; wait "$serve_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT INT TERM

go build -o "$bin/llva-serve" ./cmd/llva-serve
go build -o "$bin/llva-loadgen" ./cmd/llva-loadgen

"$bin/llva-serve" -addr "127.0.0.1:$PORT" -pool "$POOL" -queue "$QUEUE" ${SERVE_ARGS:-} &
serve_pid=$!

# Wait for the server to accept requests.
i=0
until curl -sf "http://127.0.0.1:$PORT/metrics" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "serve_bench: llva-serve did not come up on port $PORT" >&2
		exit 1
	fi
	sleep 0.1
done

set -- -addr "http://127.0.0.1:$PORT" -sessions "$SESSIONS" -total "$TOTAL" -gas "$GAS"
[ -n "${JSON_OUT:-}" ] && set -- "$@" -json "$JSON_OUT"
[ -n "${COMPARE:-}" ] && set -- "$@" -compare "$COMPARE" -compare-ratio "$RATIO"
"$bin/llva-loadgen" "$@"
