GO ?= go

.PHONY: all build vet test race race-concurrent race-llee race-codegen race-prof race-tier2 race-cache race-serve race-pool tier1 bench bench-compare bench-smoke serve-bench serve-bench-compare fmt-check

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the CI gate: everything must build, vet clean, and pass the
# full test suite under the race detector.
tier1: vet build race

# race-concurrent is the focused concurrency gate: every test named
# *Concurrent* (the translation-pipeline stress tests) under the race
# detector, fast enough to run on every push.
race-concurrent:
	$(GO) test -race -run Concurrent ./...

# race-llee exercises the session API's sharing surface — the llee
# System/Session split and the machine it drives — under the race
# detector: shared native-code cache, single-flight demands, context
# cancellation at block boundaries.
race-llee:
	$(GO) test -race ./internal/llee/... ./internal/machine/...

# race-codegen runs the translator tests — including the randomized
# allocator differential test — under the race detector; TranslateFunction
# must stay safe to call concurrently on one Translator.
race-codegen:
	$(GO) test -race ./internal/codegen/...

# race-prof exercises the guest-observability surface under the race
# detector: the prof package itself, the telemetry event ring's
# concurrent Emit/Snapshot contract, and the profiler/tracer/flight-
# recorder paths through the machine and session layers.
race-prof:
	$(GO) test -race ./internal/prof/... ./internal/telemetry/...
	$(GO) test -race -run 'Prof|Ring|Tracing|FlightRecorder|Mnemonic' ./internal/machine/... ./internal/llee/...

# race-cache exercises the persistent code cache under the race
# detector: the content-addressed store's concurrent write/read/delete
# with eviction, cross-instance dedup through a shared directory, lazy
# migration of legacy flat entries, and the flat store it supersedes.
race-cache:
	$(GO) test -race -count=1 -run 'TestCAS|TestDirStorage|Cache' ./internal/llee/...

# race-tier2 exercises the profile-guided tier-2 path under the race
# detector: background tier-up racing demand translation and hot-swap
# installs across sessions, plus the N-way differential oracle holding
# interpreter, tier-1 and tier-2 output identical on both targets.
race-tier2:
	$(GO) test -race -count=1 -run 'Tier2|RegallocDiff' ./internal/codegen/... ./internal/llee/...

# race-serve exercises the multi-tenant execution service under the
# race detector: admission control (shedding, tenant rate limits,
# tenant gas budgets), the sync/async job paths, graceful drain, and
# the gas meter's exhaustion determinism through Session.Run and across
# the HTTP boundary.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/...
	$(GO) test -race -count=1 -run Gas ./internal/llee/... ./internal/machine/...

# race-pool exercises the session-pool hot path under the race
# detector: dirty-page seal/reset at the mem and machine layers, the
# fresh-vs-reset bit-identity differential over the workload suite, the
# adversarial cross-tenant secret scans (llee host-side and serve
# end-to-end), and pool disqualification (online states, SMC redirects).
race-pool:
	$(GO) test -race -count=1 -short -run 'Reset|Seal|Dirty|Pool|Reuse|Isolation' \
		./internal/mem/... ./internal/machine/... ./internal/llee/... ./internal/serve/...

# Regenerate the paper's Table 2 with registry-sourced telemetry,
# archived under bench/ with the run date. Measures the tier-2
# (profile-warm) configuration; pass BENCH_FLAGS= to drop it.
BENCH_FLAGS ?= -tier2
bench:
	$(GO) run ./cmd/llva-bench $(BENCH_FLAGS) -json | tee bench/BENCH_$$(date +%Y-%m-%d).json

# bench-compare re-measures the deterministic Table 2 columns and diffs
# them against the committed baseline; exits non-zero on any code-size,
# instruction-count or cycle regression, and on allocs_per_op growing
# past 10% + 16 over the baseline (the zero-alloc steady state is a
# guarded property, not a one-time win). The baseline is profile-warm
# tier 2, so the compare run measures with -tier2 as well.
BENCH_BASELINE ?= bench/BENCH_2026-08-07_zeroalloc.json
bench-compare:
	$(GO) run ./cmd/llva-bench $(BENCH_FLAGS) -compare $(BENCH_BASELINE)

# bench-smoke compiles and runs the Table 2 and pipeline benchmarks
# once, as a CI-cheap check that the benchmarks themselves stay green
# (in particular the block-engine execution path under Table2RunTime),
# plus the observability smoke: a workload under -trace-out and the
# sampling profiler whose emitted trace must be valid Perfetto-loadable
# JSON with a complete span, and a trapping program whose crash report
# must render. The serve smoke drives a short loadgen burst against an
# in-process server: non-zero completions, zero 5xx.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Table2|ParallelTranslate|SpeculativeColdStart|CacheCodec' -benchtime 1x ./...
	$(GO) test -run TestTraceSmoke .
	$(GO) test -count=1 -run TestLoadGenSmoke ./internal/serve/

# serve-bench runs the full loadgen burst (the PR 9 configuration:
# 10k concurrent sessions, 50k runs, 10M gas) against a freshly started
# llva-serve and archives the report; serve-bench-compare re-runs it and
# fails loudly (exit 2) when sessions/sec drops below
# SERVE_RATIO x the committed baseline.
SERVE_BASELINE ?= bench/BENCH_2026-08-07_servepool.json
SERVE_RATIO ?= 0.75
serve-bench:
	JSON_OUT=bench/BENCH_$$(date +%Y-%m-%d)_servepool.json scripts/serve_bench.sh

serve-bench-compare:
	COMPARE=$(SERVE_BASELINE) RATIO=$(SERVE_RATIO) scripts/serve_bench.sh

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
