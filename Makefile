GO ?= go

.PHONY: all build vet test race tier1 bench fmt-check

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# tier1 is the CI gate: everything must build, vet clean, and pass the
# full test suite under the race detector.
tier1: vet build race

# Regenerate the paper's Table 2 with registry-sourced telemetry.
bench:
	$(GO) run ./cmd/llva-bench -json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
